"""The machine facade: memory + kernel + CPU + loader, ready to run."""

from dataclasses import dataclass, field
from time import perf_counter

from repro.isa import get_arch
from repro.isa.registers import LR, SP, TOC
from repro.machine.costs import CostModel
from repro.machine.cpu import CPU, DEFAULT_STEP_LIMIT
from repro.machine.kernel import Kernel
from repro.machine.loader import load_binary
from repro.machine.memory import Memory
from repro.obs import NULL_METRICS, NULL_TRACER
from repro.util.ints import align_up

#: Kernel counters mirrored onto the ``machine-run`` span / metrics.
_KERNEL_COUNTERS = ("traps", "ra_translations", "dyn_translations",
                    "unwound_frames", "exceptions", "tracebacks")


@dataclass
class RunResult:
    """Everything the evaluation harness wants to know about one run."""

    exit_code: int
    output: list
    cycles: int
    icount: int
    counters: dict = field(default_factory=dict)
    transitions: int = 0
    icache_misses: int = 0
    last_traceback: list = None

    @property
    def checksum(self):
        """The program's printed output as a comparable tuple."""
        return (self.exit_code, tuple(self.output))


class Machine:
    """A single emulated machine that loads and runs binaries."""

    def __init__(self, arch, costs=None, mem_size=None,
                 step_limit=DEFAULT_STEP_LIMIT, tracer=None,
                 metrics=None, flight=None, engine="superblock",
                 telemetry=None):
        self.spec = get_arch(arch) if isinstance(arch, str) else arch
        self.costs = costs or CostModel.default()
        #: observability sinks (:mod:`repro.obs`); no-ops by default
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.memory = Memory(mem_size) if mem_size else Memory()
        self.kernel = Kernel(self.memory, self.costs)
        self.cpu = CPU(self.memory, self.spec, self.kernel, self.costs,
                       step_limit, engine=engine)
        self.cpu.on_demote = self._on_demote
        self.images = []
        #: optional :class:`repro.obs.FlightRecorder`; None = not recording
        self.flight = None
        #: optional :class:`repro.obs.EngineTelemetry`; None = no JIT
        #: telemetry
        self.telemetry = None
        if flight is not None:
            flight.attach(self)
        if telemetry is not None:
            telemetry.attach(self)

    def _on_demote(self, cause):
        """Fused-tier demotions are never silent: mirror each one as a
        metric and a trace event naming the cause."""
        self.metrics.inc("engine.demoted")
        self.tracer.event("engine-demoted", cause=cause)

    def load(self, binary, bias=None):
        image = load_binary(binary, self.memory, bias)
        self.kernel.add_image(image)
        self.images.append(image)
        self.cpu.invalidate_code()
        if self.flight is not None:
            self.flight.observe_image(image)
        return image

    def install_runtime(self, runtime_lib, image=None):
        """LD_PRELOAD the rewriter's runtime library for ``image``."""
        if image is None:
            image = self.images[-1]
        self.kernel.install_runtime(runtime_lib, image)

    def watch_bounce(self, range_a, range_b):
        """Count control transfers between two address ranges.

        Used to measure the .text <-> .instr ping-pong the paper identifies
        as the main patching overhead (Section 3).
        """
        self.cpu.watch_regions = (range_a, range_b)

    def prepare_run(self, image=None, entry=None):
        """Set up the initial stack and registers for a run from
        ``entry`` (default: the binary's entry point); returns the
        ``(image, start)`` pair with the CPU parked at ``start``.

        :meth:`run` calls this internally; the differential runner calls
        it directly and then single-steps the CPU itself.
        """
        if image is None:
            image = self.images[0]
        binary = image.binary
        cpu = self.cpu
        cpu.regs[:] = [0] * len(cpu.regs)
        sp = self.memory.stack_top
        if self.spec.call_pushes_return_address:
            sp -= 8
            self.memory.write_int(sp, 0, 8)  # sentinel return address
        else:
            cpu.regs[LR] = 0
        cpu.regs[SP] = sp
        toc_base = binary.metadata.get("toc_base")
        if toc_base is not None:
            cpu.regs[TOC] = image.to_loaded(toc_base)
        start = entry if entry is not None else image.to_loaded(binary.entry)
        cpu.pc = start
        cpu.running = True
        return image, start

    def run(self, image=None, entry=None, step_limit=None):
        """Set up the initial stack and run from the binary entry point."""
        image, start = self.prepare_run(image, entry)
        cpu = self.cpu
        icount0, cycles0 = cpu.icount, cpu.cycles
        counters0 = dict(self.kernel.counters)
        telemetry = self.telemetry
        with self.tracer.span("machine-run",
                              arch=self.spec.name) as span:
            t0 = perf_counter() if telemetry is not None else 0.0
            try:
                exit_code = cpu.run(start, step_limit)
            finally:
                if telemetry is not None:
                    telemetry.record_run(perf_counter() - t0)
                self._record_run(span, cpu, icount0, cycles0, counters0)
        return RunResult(
            exit_code=exit_code,
            output=list(self.kernel.output),
            cycles=cpu.cycles,
            icount=cpu.icount,
            counters=dict(self.kernel.counters),
            transitions=cpu.transitions,
            icache_misses=cpu.icache_misses,
            last_traceback=self.kernel.last_traceback,
        )

    def _record_run(self, span, cpu, icount0, cycles0, counters0):
        """Mirror one run's instruction/trap/unwind tallies onto the
        trace span and the metrics registry (deltas, so repeated runs on
        one machine stay attributable)."""
        instructions = cpu.icount - icount0
        cycles = cpu.cycles - cycles0
        span.count("instructions", instructions)
        span.count("cycles", cycles)
        self.metrics.inc("machine.instructions", instructions)
        self.metrics.inc("machine.cycles", cycles)
        for name in _KERNEL_COUNTERS:
            delta = self.kernel.counters.get(name, 0) \
                - counters0.get(name, 0)
            if delta:
                span.count(name, delta)
                self.metrics.inc("machine." + name, delta)


def machine_for(binary, costs=None, step_limit=DEFAULT_STEP_LIMIT,
                stack_headroom=1 << 20, tracer=None, metrics=None,
                flight=None, engine="superblock", telemetry=None):
    """A machine sized to fit ``binary`` plus stack headroom."""
    alloc = binary.alloc_sections()
    top = max((s.end for s in alloc), default=0)
    # Leave room for a PIE bias plus the stack.
    size = align_up(top + 0x80000 + stack_headroom, 0x1000)
    size = max(size, 4 << 20)
    return Machine(binary.arch_name, costs=costs, mem_size=size,
                   step_limit=step_limit, tracer=tracer, metrics=metrics,
                   flight=flight, engine=engine, telemetry=telemetry)


def run_binary(binary, runtime_lib=None, costs=None, bias=None,
               step_limit=DEFAULT_STEP_LIMIT, watch_bounce=None,
               tracer=None, metrics=None, flight=None,
               engine="superblock", telemetry=None):
    """Load and run a binary on a fresh machine; returns a RunResult."""
    machine = machine_for(binary, costs=costs, step_limit=step_limit,
                          tracer=tracer, metrics=metrics, flight=flight,
                          engine=engine, telemetry=telemetry)
    image = machine.load(binary, bias)
    if runtime_lib is not None:
        machine.install_runtime(runtime_lib, image)
    if watch_bounce is not None:
        machine.watch_bounce(*watch_bounce)
    return machine.run(image)
