"""Flat byte-addressable memory for the emulated machine."""

from repro.util.errors import UnmappedMemoryFault

#: Default memory size: 8 MiB, enough for SPEC-like workloads.  Large
#: workloads (the libxul-like library) ask for more.
DEFAULT_SIZE = 8 << 20


class Memory:
    """A flat byte array with bounds-checked integer accessors.

    Addresses are direct indices; images are loaded at their (possibly
    biased) virtual addresses, the stack grows down from the top.
    """

    __slots__ = ("data", "size")

    def __init__(self, size=DEFAULT_SIZE):
        self.size = size
        self.data = bytearray(size)

    def check(self, addr, length=1):
        if addr < 0 or addr + length > self.size:
            raise UnmappedMemoryFault(
                f"access at {addr:#x} (+{length}) outside memory", pc=None
            )

    def read_bytes(self, addr, length):
        self.check(addr, length)
        return bytes(self.data[addr:addr + length])

    def write_bytes(self, addr, payload):
        self.check(addr, len(payload))
        self.data[addr:addr + len(payload)] = payload

    def read_int(self, addr, size, signed=False):
        self.check(addr, size)
        return int.from_bytes(self.data[addr:addr + size], "little",
                              signed=signed)

    def write_int(self, addr, value, size):
        self.check(addr, size)
        self.data[addr:addr + size] = (value & ((1 << (size * 8)) - 1)).to_bytes(
            size, "little"
        )

    @property
    def stack_top(self):
        """Initial stack pointer (16-byte aligned, small guard gap)."""
        return (self.size - 64) & ~0xF
