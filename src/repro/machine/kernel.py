"""The OS layer: syscalls, trap (signal) delivery, runtime-library hooks.

The paper's runtime library is injected with ``LD_PRELOAD`` and provides
two services (Section 3): a trap-signal handler that redirects trap-based
trampolines, and the return-address translation routine consulted during
stack unwinding.  :meth:`Kernel.install_runtime` models the preload; the
installed object supplies the maps (see
:class:`repro.core.runtime_lib.RuntimeLibrary`).
"""

from repro.isa.registers import R0, R15
from repro.machine.unwind import Unwinder
from repro.util.errors import MachineFault
from repro.util.ints import s64

SYS_EXIT = 0
SYS_PRINT = 1
SYS_THROW = 2
SYS_GC = 3
SYS_DYNTRANS = 5


class Kernel:
    """Syscall + signal layer shared by all CPUs of a machine."""

    def __init__(self, memory, costs):
        self.memory = memory
        self.costs = costs
        self.images = []
        self.output = []
        self.runtime_lib = None
        self.unwinder = Unwinder(self)
        self.last_traceback = None
        #: Optional :class:`repro.obs.flight.FlightRecorder`.
        self.flight = None
        self.counters = {
            "traps": 0,
            "ra_translations": 0,
            "dyn_translations": 0,
            "unwound_frames": 0,
            "exceptions": 0,
            "tracebacks": 0,
        }

    # -- images & runtime library ------------------------------------------

    def add_image(self, image):
        self.images.append(image)

    def image_at(self, addr):
        for image in self.images:
            if image.contains(addr):
                return image
        return None

    def install_runtime(self, runtime_lib, image):
        """Model LD_PRELOAD-injecting the runtime library for ``image``."""
        runtime_lib.attach(image)
        self.runtime_lib = runtime_lib

    # -- return-address translation hooks ------------------------------------

    def translate_unwind_pc(self, pc, cpu):
        """RA translation during C++/DWARF unwinding (wrapped step function).

        Active only when the injected runtime library wraps the unwinder;
        unmapped PCs pass through unchanged, which is how unwinding crosses
        uninstrumented binaries (Section 6).
        """
        lib = self.runtime_lib
        if lib is None or not lib.wrap_unwind:
            return pc
        cpu.cycles += self.costs.ra_translate
        self.counters["ra_translations"] += 1
        new = lib.translate(pc)
        fl = self.flight
        if fl is not None:
            fl.ra_event("cxx-unwind", pc, new, hit=lib.has_mapping(pc))
        return new

    def translate_go_pc(self, pc, cpu):
        """RA translation in Go's ``findfunc``/``pcvalue`` entry hooks."""
        lib = self.runtime_lib
        if lib is None or not lib.go_hooks:
            return pc
        cpu.cycles += self.costs.ra_translate
        self.counters["ra_translations"] += 1
        new = lib.translate(pc)
        fl = self.flight
        if fl is not None:
            fl.ra_event("go", pc, new, hit=lib.has_mapping(pc))
        return new

    # -- syscalls ----------------------------------------------------------------

    def syscall(self, cpu, num):
        cpu.cycles += self.costs.syscall
        if num == SYS_EXIT:
            cpu.exit_code = s64(cpu.regs[R0])
            cpu.running = False
        elif num == SYS_PRINT:
            self.output.append(s64(cpu.regs[R0]))
        elif num == SYS_THROW:
            self.counters["exceptions"] += 1
            self.unwinder.throw(cpu, cpu.regs[R0])
        elif num == SYS_GC:
            self.counters["tracebacks"] += 1
            self.last_traceback = self.unwinder.traceback(cpu)
        elif num == SYS_DYNTRANS:
            self._dynamic_translate(cpu)
        else:
            raise MachineFault(f"bad syscall {num} at {cpu.pc:#x}", pc=cpu.pc)

    def _dynamic_translate(self, cpu):
        """Multiverse-style dynamic translation of an indirect target.

        The baseline rewriter replaces an indirect transfer with a call to
        the translation routine; the target arrives in the scratch
        register R15 and execution resumes at the translated (relocated)
        address.
        """
        lib = self.runtime_lib
        if lib is None:
            raise MachineFault(
                "dynamic translation syscall without a runtime library",
                pc=cpu.pc,
            )
        cpu.cycles += self.costs.dyn_translate
        self.counters["dyn_translations"] += 1
        cpu.pc = lib.dynamic_lookup(cpu.regs[R15])

    # -- signals ------------------------------------------------------------------

    def handle_trap(self, cpu):
        """Deliver a trap signal: redirect via the runtime library's map."""
        lib = self.runtime_lib
        if lib is not None:
            target = lib.trap_target(cpu.pc)
            if target is not None:
                cpu.cycles += self.costs.trap
                self.counters["traps"] += 1
                cpu.pc = target
                return
        raise MachineFault(f"unhandled trap at {cpu.pc:#x}", pc=cpu.pc)
