"""Loading binaries into emulated memory.

Handles the load bias for position-independent binaries and applies the
run-time relocations from ``.rela.dyn`` — the entries Egalito/RetroWrite
build their whole approach on, and which the loader (not the rewriter)
owns at run time.
"""

from repro.binfmt.binary import PIE, SHLIB
from repro.util.errors import ReproError

#: Load bias used for position-independent images (ASLR stand-in; fixed so
#: runs are deterministic, non-zero so absolute-address bugs surface).
DEFAULT_PIE_BIAS = 0x40000


class LoadedImage:
    """One binary mapped into memory at ``bias``."""

    def __init__(self, binary, bias):
        self.binary = binary
        self.bias = bias
        alloc = binary.alloc_sections()
        if not alloc:
            raise ReproError(f"binary {binary.name} has no loadable sections")
        self.low = min(s.addr for s in alloc) + bias
        self.high = max(s.end for s in alloc) + bias

    def contains(self, addr):
        return self.low <= addr < self.high

    def to_orig(self, addr):
        """Loaded address -> original (link-time) address."""
        return addr - self.bias

    def to_loaded(self, addr):
        """Original (link-time) address -> loaded address."""
        return addr + self.bias

    def __repr__(self):
        return (
            f"<LoadedImage {self.binary.name} bias={self.bias:#x} "
            f"[{self.low:#x},{self.high:#x})>"
        )


def load_binary(binary, memory, bias=None):
    """Map ``binary`` into ``memory`` and apply run-time relocations.

    Returns a :class:`LoadedImage`.  Position-dependent executables load
    at bias 0 (their addresses are absolute); PIE/shared objects default
    to :data:`DEFAULT_PIE_BIAS`.
    """
    if bias is None:
        bias = DEFAULT_PIE_BIAS if binary.kind in (PIE, SHLIB) else 0
    if binary.kind not in (PIE, SHLIB) and bias != 0:
        raise ReproError(
            f"{binary.name} is position-dependent; it cannot load at "
            f"bias {bias:#x}"
        )
    for section in binary.alloc_sections():
        memory.write_bytes(section.addr + bias, bytes(section.data))
    for reloc in binary.relocations:
        memory.write_int(reloc.where + bias, reloc.value_for_bias(bias),
                         reloc.size)
    return LoadedImage(binary, bias)
