"""The deterministic cost model.

The paper measures wall-clock overhead on real hardware; we replace that
with cycle accounting chosen so the *mechanisms* the paper discusses have
their relative costs:

* a taken branch costs one extra cycle — the "ping-pong" between ``.text``
  trampolines and ``.instr`` (Section 3) therefore costs two extra taken
  branches per bounce, before i-cache effects;
* a trap-based trampoline costs :attr:`CostModel.trap` cycles — a
  kernel signal round trip is on the order of microseconds, thousands of
  cycles — which is what makes hot trap trampolines "prohibitive"
  (Sections 1, 7, and the Diogenes case study);
* one call-frame unwind costs :attr:`CostModel.unwind_frame` cycles,
  dwarfing the :attr:`CostModel.ra_translate` cycles added per frame by
  runtime return-address translation — the paper's argument for why RA
  translation overhead is negligible (Section 6);
* a dynamic-translation lookup (the Multiverse baseline) costs
  :attr:`CostModel.dyn_translate` cycles per indirect transfer.

An optional direct-mapped instruction-cache model adds
:attr:`CostModel.icache_miss` cycles per line miss, letting the evaluation
confirm the paper's claim that bigger binaries need not mean more hot-code
misses.
"""

from dataclasses import dataclass


@dataclass
class CostModel:
    """Cycle costs for the emulated machine.

    :attr:`insn` is charged once per retired instruction by both
    execution tiers of :class:`repro.machine.cpu.CPU` (superblocks
    pre-multiply it into their per-block deltas); the default of 1
    keeps historical cycle counts unchanged.
    """

    insn: int = 1
    taken_branch: int = 1
    call: int = 2
    ret: int = 2
    syscall: int = 10
    trap: int = 5000
    unwind_frame: int = 30
    ra_translate: int = 2
    dyn_translate: int = 25

    icache_enabled: bool = False
    icache_line_bits: int = 6      # 64-byte lines
    icache_lines: int = 1024       # direct-mapped, 64 KiB total
    icache_miss: int = 8

    @classmethod
    def default(cls):
        return cls()

    @classmethod
    def with_icache(cls):
        return cls(icache_enabled=True)
