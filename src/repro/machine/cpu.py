"""The CPU interpreter.

Executes binary code directly from emulated memory bytes.  This is what
makes the strong rewrite test (Section 8) meaningful: after rewriting, the
original ``.text`` is filled with illegal bytes, so any control flow that
the rewriter failed to intercept faults immediately instead of silently
executing stale code.

Each decoded instruction is compiled once into a Python closure keyed by
address; repeated execution (loops) runs the closure without re-decoding.
Costs follow :class:`repro.machine.costs.CostModel`.
"""

from repro.isa.insn import LOAD_SIZES, SIGNED_LOADS, STORE_SIZES
from repro.isa.registers import LR, NUM_REGS, SP
from repro.machine.costs import CostModel
from repro.util.errors import (
    DecodingError,
    IllegalInstructionFault,
    MachineFault,
    UnmappedMemoryFault,
)

_MASK = (1 << 64) - 1
_SIGN = 1 << 63

#: Default dynamic-instruction budget per run.
DEFAULT_STEP_LIMIT = 80_000_000

_ARITH = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << (b & 63),
    "shr": lambda a, b: a >> (b & 63),
}

_COND = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: a < b,
    "bge": lambda a, b: a >= b,
    "bgt": lambda a, b: a > b,
    "ble": lambda a, b: a <= b,
}


class CPU:
    """One hardware thread executing from a :class:`Memory`."""

    def __init__(self, memory, spec, kernel, costs=None,
                 step_limit=DEFAULT_STEP_LIMIT):
        self.memory = memory
        self.spec = spec
        self.kernel = kernel
        self.costs = costs or CostModel.default()
        self.step_limit = step_limit

        self.regs = [0] * NUM_REGS
        self.pc = 0
        self.cycles = 0
        self.icount = 0
        self.running = False
        self.exit_code = None

        # Counters surfaced to the evaluation harness.
        self.taken_branches = 0
        self.icache_misses = 0
        self.transitions = 0

        #: Optional pair of (lo, hi) address regions; transitions between
        #: them are counted (used to measure .text <-> .instr bouncing).
        self.watch_regions = None

        #: Optional :class:`repro.obs.flight.FlightRecorder`; None keeps
        #: the hot loop at a single identity test per step.
        self.flight = None

        self._compiled = {}
        self._ends = {}

    # -- public API --------------------------------------------------------

    def invalidate_code(self):
        """Drop compiled closures (call after writing to code memory)."""
        self._compiled.clear()
        self._ends.clear()

    def step(self):
        """Execute exactly one instruction (lockstep/differential use).

        Skips the run loop's icache/watch/flight accounting; callers own
        whatever bookkeeping they need.
        """
        pc = self.pc
        fn = self._compiled.get(pc)
        if fn is None:
            fn = self._compile(pc)
            self._compiled[pc] = fn
        fn()
        self.icount += 1
        self.cycles += 1

    def run(self, entry=None, step_limit=None):
        """Execute until an exit syscall; returns the exit code."""
        if entry is not None:
            self.pc = entry
        limit = step_limit if step_limit is not None else self.step_limit
        compiled = self._compiled
        compile_one = self._compile
        costs = self.costs
        icache_on = costs.icache_enabled
        if icache_on:
            line_bits = costs.icache_line_bits
            nlines = costs.icache_lines
            miss_cost = costs.icache_miss
            tags = [-1] * nlines
            mask = nlines - 1
        watch = self.watch_regions
        if watch:
            (a_lo, a_hi), (b_lo, b_hi) = watch
            prev_region = -1
        flight = self.flight
        if flight is not None:
            ends = self._ends
            fsites = flight.tramp_sites
            flight.record_block(self.pc, self.cycles)
        self.running = True
        steps = 0
        while self.running:
            pc = self.pc
            fn = compiled.get(pc)
            if fn is None:
                fn = compile_one(pc)
                compiled[pc] = fn
            if icache_on:
                line = pc >> line_bits
                idx = line & mask
                if tags[idx] != line:
                    tags[idx] = line
                    self.cycles += miss_cost
                    self.icache_misses += 1
            if watch:
                if a_lo <= pc < a_hi:
                    region = 0
                elif b_lo <= pc < b_hi:
                    region = 1
                else:
                    region = prev_region
                if region != prev_region:
                    if prev_region != -1:
                        self.transitions += 1
                    prev_region = region
            fn()
            steps += 1
            self.cycles += 1
            if flight is not None:
                if pc in fsites:
                    flight.tramp_hit(pc)
                npc = self.pc
                if npc != ends[pc]:
                    flight.record_block(npc, self.cycles)
            if steps >= limit:
                raise MachineFault(
                    f"step limit of {limit} exceeded at pc={self.pc:#x}",
                    pc=self.pc,
                )
        self.icount += steps
        return self.exit_code

    # -- closure compiler -----------------------------------------------------

    def _compile(self, addr):
        data = self.memory.data
        msize = self.memory.size
        if addr < 0 or addr >= msize:
            raise UnmappedMemoryFault(f"fetch at {addr:#x}", pc=addr)
        try:
            insn = self.spec.decode(data, addr, addr=addr)
        except DecodingError as exc:
            raise IllegalInstructionFault(
                f"illegal instruction at {addr:#x}: {exc}", pc=addr
            )
        self._ends[addr] = addr + insn.length
        return self._make_closure(insn, data, msize)

    def _make_closure(self, insn, data, msize):
        self_ = self
        regs = self.regs
        m = insn.mnemonic
        ops = insn.operands
        addr = insn.addr
        nxt = addr + insn.length
        tb_cost = self.costs.taken_branch
        call_cost = self.costs.call
        ret_cost = self.costs.ret

        if m == "nop":
            def fn():
                self_.pc = nxt
            return fn

        if m == "mov":
            rd, ra = ops

            def fn():
                regs[rd] = regs[ra]
                self_.pc = nxt
            return fn

        if m == "movi":
            rd, imm = ops
            value = imm & _MASK

            def fn():
                regs[rd] = value
                self_.pc = nxt
            return fn

        if m == "lis":
            rd, imm = ops
            value = (imm << 16) & _MASK

            def fn():
                regs[rd] = value
                self_.pc = nxt
            return fn

        if m == "addis":
            rd, ra, imm = ops
            delta = imm << 16

            def fn():
                regs[rd] = (regs[ra] + delta) & _MASK
                self_.pc = nxt
            return fn

        if m == "adrp":
            rd, imm = ops
            value = ((addr & ~0xFFF) + (imm << 12)) & _MASK

            def fn():
                regs[rd] = value
                self_.pc = nxt
            return fn

        if m == "addi":
            rd, ra, imm = ops

            def fn():
                regs[rd] = (regs[ra] + imm) & _MASK
                self_.pc = nxt
            return fn

        if m in _ARITH:
            rd, ra, rb = ops
            op = _ARITH[m]

            def fn():
                regs[rd] = op(regs[ra], regs[rb]) & _MASK
                self_.pc = nxt
            return fn

        if m == "shli":
            rd, ra, imm = ops
            sh = imm & 63

            def fn():
                regs[rd] = (regs[ra] << sh) & _MASK
                self_.pc = nxt
            return fn

        if m == "shri":
            rd, ra, imm = ops
            sh = imm & 63

            def fn():
                regs[rd] = regs[ra] >> sh
                self_.pc = nxt
            return fn

        if m == "inc":
            (rd,) = ops

            def fn():
                regs[rd] = (regs[rd] + 1) & _MASK
                self_.pc = nxt
            return fn

        if m in LOAD_SIZES and not m.startswith("ldpc"):
            rd, mem_op = ops
            base = mem_op.base
            disp = mem_op.disp
            size = LOAD_SIZES[m]
            signed = m in SIGNED_LOADS
            bits = size * 8
            sign_bit = 1 << (bits - 1)
            wrap = 1 << bits

            def fn():
                a = (regs[base] + disp) & _MASK
                if a + size > msize:
                    raise UnmappedMemoryFault(
                        f"load at {a:#x} (pc={addr:#x})", pc=addr
                    )
                v = int.from_bytes(data[a:a + size], "little")
                if signed and v & sign_bit:
                    v = (v - wrap) & _MASK
                regs[rd] = v
                self_.pc = nxt
            return fn

        if m in STORE_SIZES:
            rs, mem_op = ops
            base = mem_op.base
            disp = mem_op.disp
            size = STORE_SIZES[m]
            vmask = (1 << (size * 8)) - 1

            def fn():
                a = (regs[base] + disp) & _MASK
                if a + size > msize:
                    raise UnmappedMemoryFault(
                        f"store at {a:#x} (pc={addr:#x})", pc=addr
                    )
                data[a:a + size] = (regs[rs] & vmask).to_bytes(size, "little")
                self_.pc = nxt
            return fn

        if m.startswith("ldpc"):
            rd, disp = ops
            size = LOAD_SIZES[m]
            a = addr + disp

            def fn():
                if a < 0 or a + size > msize:
                    raise UnmappedMemoryFault(
                        f"pc-relative load at {a:#x}", pc=addr
                    )
                regs[rd] = int.from_bytes(data[a:a + size], "little")
                self_.pc = nxt
            return fn

        if m == "leapc":
            rd, disp = ops
            value = (addr + disp) & _MASK

            def fn():
                regs[rd] = value
                self_.pc = nxt
            return fn

        if m == "push":
            (rs,) = ops

            def fn():
                sp = (regs[SP] - 8) & _MASK
                if sp + 8 > msize:
                    raise UnmappedMemoryFault(f"push at {sp:#x}", pc=addr)
                data[sp:sp + 8] = regs[rs].to_bytes(8, "little")
                regs[SP] = sp
                self_.pc = nxt
            return fn

        if m == "pop":
            (rd,) = ops

            def fn():
                sp = regs[SP]
                if sp + 8 > msize:
                    raise UnmappedMemoryFault(f"pop at {sp:#x}", pc=addr)
                regs[rd] = int.from_bytes(data[sp:sp + 8], "little")
                regs[SP] = (sp + 8) & _MASK
                self_.pc = nxt
            return fn

        if m in ("jmp", "jmp.s"):
            target = addr + ops[0]

            def fn():
                self_.pc = target
                self_.cycles += tb_cost
                self_.taken_branches += 1
            return fn

        if m in _COND:
            ra, rb, disp = ops
            target = addr + disp
            cond = _COND[m]

            def fn():
                x = regs[ra]
                y = regs[rb]
                if x >= _SIGN:
                    x -= 1 << 64
                if y >= _SIGN:
                    y -= 1 << 64
                if cond(x, y):
                    self_.pc = target
                    self_.cycles += tb_cost
                    self_.taken_branches += 1
                else:
                    self_.pc = nxt
            return fn

        if m == "jmpr":
            (rt,) = ops

            def fn():
                self_.pc = regs[rt]
                self_.cycles += tb_cost
                self_.taken_branches += 1
            return fn

        if m == "call":
            target = addr + ops[0]
            if self.spec.call_pushes_return_address:
                def fn():
                    sp = (regs[SP] - 8) & _MASK
                    if sp + 8 > msize:
                        raise UnmappedMemoryFault(f"call at {sp:#x}", pc=addr)
                    data[sp:sp + 8] = nxt.to_bytes(8, "little")
                    regs[SP] = sp
                    self_.pc = target
                    self_.cycles += call_cost
                    self_.taken_branches += 1
            else:
                def fn():
                    regs[LR] = nxt
                    self_.pc = target
                    self_.cycles += call_cost
                    self_.taken_branches += 1
            return fn

        if m == "callr":
            (rt,) = ops
            if self.spec.call_pushes_return_address:
                def fn():
                    sp = (regs[SP] - 8) & _MASK
                    if sp + 8 > msize:
                        raise UnmappedMemoryFault(f"callr at {sp:#x}", pc=addr)
                    data[sp:sp + 8] = nxt.to_bytes(8, "little")
                    regs[SP] = sp
                    self_.pc = regs[rt]
                    self_.cycles += call_cost
                    self_.taken_branches += 1
            else:
                def fn():
                    regs[LR] = nxt
                    self_.pc = regs[rt]
                    self_.cycles += call_cost
                    self_.taken_branches += 1
            return fn

        if m == "ret":
            if self.spec.call_pushes_return_address:
                def fn():
                    sp = regs[SP]
                    if sp + 8 > msize:
                        raise UnmappedMemoryFault(f"ret at {sp:#x}", pc=addr)
                    self_.pc = int.from_bytes(data[sp:sp + 8], "little")
                    regs[SP] = (sp + 8) & _MASK
                    self_.cycles += ret_cost
                    self_.taken_branches += 1
            else:
                def fn():
                    self_.pc = regs[LR]
                    self_.cycles += ret_cost
                    self_.taken_branches += 1
            return fn

        if m == "trap":
            def fn():
                self_.pc = addr
                self_.kernel.handle_trap(self_)
            return fn

        if m == "syscall":
            (num,) = ops

            def fn():
                self_.pc = addr
                self_.kernel.syscall(self_, num)
                if self_.running and self_.pc == addr:
                    self_.pc = nxt
            return fn

        raise IllegalInstructionFault(
            f"unimplemented mnemonic {m} at {addr:#x}", pc=addr
        )
