"""The CPU interpreter.

Executes binary code directly from emulated memory bytes.  This is what
makes the strong rewrite test (Section 8) meaningful: after rewriting, the
original ``.text`` is filled with illegal bytes, so any control flow that
the rewriter failed to intercept faults immediately instead of silently
executing stale code.

Execution is tiered:

* **per-step tier** — each decoded instruction is compiled once into a
  Python closure keyed by address; repeated execution (loops) runs the
  closure without re-decoding.  :meth:`CPU.step` (lockstep/differential
  use) always runs here, and :meth:`CPU.run` falls back to it when
  ``engine="step"`` is selected or a *step-granularity*
  :class:`~repro.obs.flight.FlightRecorder` is attached (per-transfer
  block events demand per-step execution).
* **superblock tier** — the default for :meth:`CPU.run`.  At first
  execution of an address, the run of instructions from that address up
  to the next control transfer (or watch-region boundary, or
  :data:`SUPERBLOCK_CAP`) is fused into one generated block function:
  straight-line register/memory operations are inlined as Python source
  and everything else calls its per-step closure.  A block is dispatched
  once per entry with pre-computed instruction/cycle deltas, so
  straight-line runs skip per-step bookkeeping entirely.

Demotions away from the fused tier are never silent: a manual
:meth:`CPU.step` on a superblock CPU and a step-granularity recorder
attach each count a cause in :attr:`CPU.demotions` (mirrored to the
machine's metrics as ``engine.demoted`` and traced as an
``engine-demoted`` event).  The default block-granularity
:class:`~repro.obs.flight.FlightRecorder` *rides* the fused tier — one
ring entry per block dispatch with exact trampoline-hit recovery — and
an attached :class:`~repro.obs.engine.EngineTelemetry` observes
fuse/compile/dispatch/guard activity without demoting.  Block-cache
invalidations are likewise counted by cause in
:attr:`CPU.invalidations` (``invalidate_code``, ``watch-region``,
``recorder-attach``, ``telemetry-attach``/``-detach``).  The ``is
None`` discipline keeps the detached observer tax to one boolean test
per block dispatch (budgeted under 2% by the throughput bench).

Accounting stays *exact* across tiers (and with observers attached): cycle costs follow
:class:`repro.machine.costs.CostModel` (including :attr:`CostModel.insn`
per executed instruction), i-cache misses are modeled per line actually
crossed inside a block, watch-region transitions are counted once per
(region-homogeneous) block, and faults — step limit, unmapped access,
illegal instruction, kernel errors — leave the same ``icount``,
``cycles`` and ``pc`` as per-step execution, down to the instruction.
"""

import itertools
import re
import struct
from time import perf_counter

from repro.isa.insn import LOAD_SIZES, SIGNED_LOADS, STORE_SIZES
from repro.isa.registers import LR, NUM_REGS, SP
from repro.machine.costs import CostModel
from repro.util.errors import (
    DecodingError,
    IllegalInstructionFault,
    MachineFault,
    UnmappedMemoryFault,
)

_MASK = (1 << 64) - 1
_SIGN = 1 << 63
#: The 64-bit mask as it appears in generated superblock source.
_MASK_SRC = "0xffffffffffffffff"

#: Default dynamic-instruction budget per run.
DEFAULT_STEP_LIMIT = 80_000_000

#: Known execution-engine tiers, in preference order.
ENGINES = ("superblock", "step")

#: Upper bound on instructions fused into one superblock.  A straight
#: line longer than this is split; exactness is unaffected, because the
#: follow-on block resumes accounting at the split point.
SUPERBLOCK_CAP = 128

#: Mnemonics that end a superblock: anything whose closure can move the
#: pc non-sequentially or enter the kernel (which may redirect the pc,
#: stop the machine, or raise).
_TRANSFERS = frozenset({
    "jmp", "jmp.s", "beq", "bne", "blt", "bge", "bgt", "ble",
    "jmpr", "call", "callr", "ret", "trap", "syscall",
})

_ARITH = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << (b & 63),
    "shr": lambda a, b: a >> (b & 63),
}

#: Straight-line arithmetic fused as infix source inside superblocks.
_ARITH_SRC = {"add": "+", "sub": "-", "mul": "*", "and": "&",
              "or": "|", "xor": "^"}

_COND = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: a < b,
    "bge": lambda a, b: a >= b,
    "bgt": lambda a, b: a > b,
    "ble": lambda a, b: a <= b,
}

#: Comparison operators as they appear in generated loop-block source.
_COND_SRC = {"beq": "==", "bne": "!=", "blt": "<", "bge": ">=",
             "bgt": ">", "ble": "<="}

#: Unique filename suffix per generated superblock (fault forensics
#: match tracebacks against the block's filename).
_block_ids = itertools.count()

#: Guest-register references in generated superblock source, promoted
#: to frame locals (``r[3]`` -> ``v3``) by the allocation pass.
_REG_REF = re.compile(r"\br\[(\d+)\]")
#: A per-step-closure call statement in generated source (these lines
#: operate on the shared register list, not the frame locals).
_CLOSURE_CALL = re.compile(r"^c\d+\(\)$")

#: Pre-compiled memory accessors bound into generated superblocks:
#: ``u{size}``/``g{size}`` unpack unsigned/signed little-endian
#: integers, ``p{size}`` packs them — measurably faster than slicing
#: plus ``int.from_bytes``/``to_bytes`` on the hot path.
_MEM_OPS = {}
for _size, _u, _g in ((1, "B", "b"), (2, "H", "h"),
                      (4, "I", "i"), (8, "Q", "q")):
    _MEM_OPS[f"u{_size}"] = struct.Struct("<" + _u).unpack_from
    _MEM_OPS[f"g{_size}"] = struct.Struct("<" + _g).unpack_from
    _MEM_OPS[f"p{_size}"] = struct.Struct("<" + _u).pack_into
del _size, _u, _g


def _inline_src(insn, msize):
    """Python source lines for one straight-line instruction inside a
    superblock, or ``None`` when it must run via its per-step closure.

    The emitted source mirrors the per-step closures statement for
    statement — including fault messages — so the two tiers are
    byte-identical in outputs and in every counter.  Names bound in the
    generated scope: ``s`` (the CPU), ``r`` (the register file), ``d``
    (memory bytes), ``UF`` (:class:`UnmappedMemoryFault`), and the
    :data:`_MEM_OPS` accessors (``u8``/``g4``/``p2``...).  Inlined operations deliberately do
    *not* update ``s.pc``; the block seals the pc once at its end, and
    fault recovery (:meth:`CPU._fault_index`) restores the exact pc of
    a faulting instruction from the block's line map.
    """
    m = insn.mnemonic
    ops = insn.operands
    addr = insn.addr
    M = _MASK_SRC

    if m == "nop":
        return []
    if m == "mov":
        rd, ra = ops
        return [f"r[{rd}] = r[{ra}]"]
    if m == "movi":
        rd, imm = ops
        return [f"r[{rd}] = {imm & _MASK}"]
    if m == "lis":
        rd, imm = ops
        return [f"r[{rd}] = {(imm << 16) & _MASK}"]
    if m == "addis":
        rd, ra, imm = ops
        return [f"r[{rd}] = (r[{ra}] + ({imm << 16})) & {M}"]
    if m == "adrp":
        rd, imm = ops
        return [f"r[{rd}] = {((addr & ~0xFFF) + (imm << 12)) & _MASK}"]
    if m == "addi":
        rd, ra, imm = ops
        return [f"r[{rd}] = (r[{ra}] + ({imm})) & {M}"]
    if m in _ARITH_SRC:
        rd, ra, rb = ops
        return [f"r[{rd}] = (r[{ra}] {_ARITH_SRC[m]} r[{rb}]) & {M}"]
    if m == "shl":
        rd, ra, rb = ops
        return [f"r[{rd}] = (r[{ra}] << (r[{rb}] & 63)) & {M}"]
    if m == "shr":
        rd, ra, rb = ops
        return [f"r[{rd}] = (r[{ra}] >> (r[{rb}] & 63)) & {M}"]
    if m == "shli":
        rd, ra, imm = ops
        return [f"r[{rd}] = (r[{ra}] << {imm & 63}) & {M}"]
    if m == "shri":
        rd, ra, imm = ops
        return [f"r[{rd}] = r[{ra}] >> {imm & 63}"]
    if m == "inc":
        (rd,) = ops
        return [f"r[{rd}] = (r[{rd}] + 1) & {M}"]
    if m in LOAD_SIZES and not m.startswith("ldpc"):
        rd, mem_op = ops
        size = LOAD_SIZES[m]
        lines = [
            f"a = (r[{mem_op.base}] + ({mem_op.disp})) & {M}",
            f'if a + {size} > {msize}: raise UF(f"load at {{a:#x}} '
            f'(pc={addr:#x})", pc={addr})',
        ]
        if m in SIGNED_LOADS:
            # A signed unpack plus the 64-bit mask is the same value
            # the per-step closure's manual sign extension produces.
            lines.append(f"r[{rd}] = g{size}(d, a)[0] & {M}")
        else:
            lines.append(f"r[{rd}] = u{size}(d, a)[0]")
        return lines
    if m in STORE_SIZES:
        rs, mem_op = ops
        size = STORE_SIZES[m]
        vmask = (1 << (size * 8)) - 1
        value = f"r[{rs}]" if size == 8 else f"r[{rs}] & {vmask}"
        return [
            f"a = (r[{mem_op.base}] + ({mem_op.disp})) & {M}",
            f'if a + {size} > {msize}: raise UF(f"store at {{a:#x}} '
            f'(pc={addr:#x})", pc={addr})',
            f"p{size}(d, a, {value})",
        ]
    if m.startswith("ldpc"):
        rd, disp = ops
        size = LOAD_SIZES[m]
        a = addr + disp
        if a < 0 or a + size > msize:
            return None   # always-faulting: keep the closure's raise
        return [f"r[{rd}] = u{size}(d, {a})[0]"]
    if m == "leapc":
        rd, disp = ops
        return [f"r[{rd}] = {(addr + disp) & _MASK}"]
    if m == "push":
        (rs,) = ops
        return [
            f"a = (r[{SP}] - 8) & {M}",
            f'if a + 8 > {msize}: '
            f'raise UF(f"push at {{a:#x}}", pc={addr})',
            f"p8(d, a, r[{rs}])",
            f"r[{SP}] = a",
        ]
    if m == "pop":
        (rd,) = ops
        return [
            f"a = r[{SP}]",
            f'if a + 8 > {msize}: '
            f'raise UF(f"pop at {{a:#x}}", pc={addr})',
            f"r[{rd}] = u8(d, a)[0]",
            f"r[{SP}] = (a + 8) & {M}",
        ]
    return None


class CPU:
    """One hardware thread executing from a :class:`Memory`."""

    def __init__(self, memory, spec, kernel, costs=None,
                 step_limit=DEFAULT_STEP_LIMIT, engine="superblock"):
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; known tiers: "
                + ", ".join(ENGINES))
        self.memory = memory
        self.spec = spec
        self.kernel = kernel
        self.costs = costs or CostModel.default()
        self.step_limit = step_limit
        #: Execution engine for :meth:`run`: ``"superblock"`` (default)
        #: or ``"step"`` (always per-instruction).  A step-granularity
        #: FlightRecorder forces the per-step tier regardless of this
        #: setting — counted in :attr:`demotions`, never silent.
        self.engine = engine

        self.regs = [0] * NUM_REGS
        self.pc = 0
        self.cycles = 0
        self.icount = 0
        self.running = False
        self.exit_code = None

        # Counters surfaced to the evaluation harness.
        self.taken_branches = 0
        self.icache_misses = 0
        self.transitions = 0

        #: Optional :class:`repro.obs.flight.FlightRecorder`; None keeps
        #: the hot loop at a single identity test per step.
        self.flight = None
        #: Optional :class:`repro.obs.engine.EngineTelemetry`; None
        #: keeps the dispatch loop at one boolean test per block.
        self.telemetry = None
        #: Demotions away from the fused tier, by cause (always
        #: counted, telemetry attached or not).
        self.demotions = {}
        #: Block-cache invalidations that dropped fused blocks, by
        #: cause (always counted, telemetry attached or not).
        self.invalidations = {}
        #: Optional ``fn(cause)`` invoked on every demotion — the
        #: Machine wires this to its metrics/tracer so demotions are
        #: never silent.
        self.on_demote = None
        self._step_demoted = False

        self._compiled = {}
        self._ends = {}
        #: decoded Instruction per address (feeds the superblock fuser)
        self._insns = {}
        #: superblock start address -> block record (see _build_block)
        self._blocks = {}
        self._watch_regions = None

    # -- public API --------------------------------------------------------

    @property
    def watch_regions(self):
        """Optional pair of (lo, hi) address regions; transitions between
        them are counted (used to measure .text <-> .instr bouncing)."""
        return self._watch_regions

    @watch_regions.setter
    def watch_regions(self, regions):
        # Superblocks are fused with watch-region boundaries baked in,
        # so changing the regions invalidates every block.
        self._watch_regions = regions
        if self._blocks:
            self._invalidate_cause("watch-region")

    def invalidate_code(self):
        """Drop compiled closures and fused superblocks (call after
        writing to code memory)."""
        self._compiled.clear()
        self._ends.clear()
        self._insns.clear()
        if self._blocks:
            self._invalidate_cause("invalidate_code")

    def attach_telemetry(self, telemetry):
        """Wire an :class:`~repro.obs.engine.EngineTelemetry` in (or
        out, with ``None``).

        Existing fused blocks were generated without (or with a
        previous collector's) guard instrumentation, so the block cache
        is dropped — counted as a ``telemetry-attach``/``-detach``
        invalidation — and rebuilt lazily with the right counters baked
        in.  Pre-attach demotion/invalidation tallies are folded into
        the collector so nothing is lost.
        """
        if telemetry is self.telemetry:
            return
        if self._blocks:
            self._invalidate_cause(
                "telemetry-attach" if telemetry is not None
                else "telemetry-detach")
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.engine = self.engine
            telemetry.seed(self.demotions, self.invalidations)

    def _demote(self, cause):
        """Count one demotion away from the fused tier, by cause, and
        signal it (telemetry mirror plus the machine's ``on_demote``
        metrics/event hook)."""
        self.demotions[cause] = self.demotions.get(cause, 0) + 1
        t = self.telemetry
        if t is not None:
            t.record_demotion(cause)
        cb = self.on_demote
        if cb is not None:
            cb(cause)

    def _invalidate_cause(self, cause):
        """Drop every fused block and count why."""
        self._blocks.clear()
        self.invalidations[cause] = \
            self.invalidations.get(cause, 0) + 1
        t = self.telemetry
        if t is not None:
            t.record_invalidation(cause)

    def step(self):
        """Execute exactly one instruction (lockstep/differential use).

        Always runs the per-step tier and skips the run loop's
        icache/watch/flight accounting; callers own whatever bookkeeping
        they need.  On a superblock CPU the first manual step counts a
        ``manual-step`` demotion (once per CPU), so fused-tier escapes
        are visible in the engine observatory.
        """
        if not self._step_demoted and self.engine == "superblock":
            self._step_demoted = True
            self._demote("manual-step")
        pc = self.pc
        fn = self._compiled.get(pc)
        if fn is None:
            fn = self._compile(pc)
            self._compiled[pc] = fn
        fn()
        self.icount += 1
        self.cycles += self.costs.insn

    def run(self, entry=None, step_limit=None):
        """Execute until an exit syscall; returns the exit code.

        Dispatches fused superblocks unless ``engine="step"`` was
        selected or a step-granularity flight recorder is attached
        (block-granularity recorders and engine telemetry ride the
        fused tier); the last strides of a run approaching its step
        limit always finish per-step, so the limit fault lands on the
        exact instruction.  ``icount`` is committed in a ``finally`` so
        faulting runs report exactly the instructions that completed.
        """
        if entry is not None:
            self.pc = entry
        limit = step_limit if step_limit is not None else self.step_limit
        compiled = self._compiled
        compile_one = self._compile
        costs = self.costs
        insn_cost = costs.insn
        icache_on = costs.icache_enabled
        if icache_on:
            line_bits = costs.icache_line_bits
            nlines = costs.icache_lines
            miss_cost = costs.icache_miss
            tags = [-1] * nlines
            mask = nlines - 1
        watch = self._watch_regions
        if watch:
            (a_lo, a_hi), (b_lo, b_hi) = watch
            prev_region = -1
        flight = self.flight
        if flight is not None:
            ends = self._ends
            fsites = flight.tramp_sites
            flight.record_block(self.pc, self.cycles)
        self.running = True
        steps = 0
        try:
            if self.engine == "superblock" and (
                    flight is None or flight.granularity == "block"):
                blocks = self._blocks
                build = self._build_block
                telem = self.telemetry
                observe = telem is not None or flight is not None
                tstats = telem.block_stats if telem is not None else None
                if icache_on:
                    # Segmented dispatch: one tag check per i-cache
                    # line actually crossed inside the block, charged
                    # before its instructions run — exactly the
                    # per-step order.
                    while self.running:
                        b = blocks.get(self.pc)
                        if b is None:
                            b = build(self.pc)
                        n = b[1]
                        if steps + n >= limit:
                            break
                        if watch:
                            region = b[2]
                            if region is not None \
                                    and region != prev_region:
                                if prev_region != -1:
                                    self.transitions += 1
                                prev_region = region
                        if observe:
                            pc0 = self.pc
                            c0 = self.cycles
                            steps0 = steps
                        for line, idx, seg_fns, seg_n, seg_cyc in b[3]:
                            if tags[idx] != line:
                                tags[idx] = line
                                self.cycles += miss_cost
                                self.icache_misses += 1
                            k = 0
                            try:
                                for fn in seg_fns:
                                    fn()
                                    k += 1
                            except BaseException:
                                steps += k
                                self.cycles += k * insn_cost
                                raise
                            steps += seg_n
                            self.cycles += seg_cyc
                        if observe:
                            done = steps - steps0
                            if tstats is not None:
                                st = tstats.get(pc0)
                                if st is None:
                                    tstats[pc0] = \
                                        [1, done, self.cycles - c0]
                                else:
                                    st[0] += 1
                                    st[1] += done
                                    st[2] += self.cycles - c0
                            if flight is not None:
                                flight.record_superblock(
                                    b, self.pc, done, self.cycles)
                else:
                    while self.running:
                        b = blocks.get(self.pc)
                        if b is None:
                            b = build(self.pc)
                        n = b[1]
                        if steps + n >= limit:
                            break
                        if watch:
                            region = b[2]
                            if region is not None \
                                    and region != prev_region:
                                if prev_region != -1:
                                    self.transitions += 1
                                prev_region = region
                        if observe:
                            pc0 = self.pc
                            c0 = self.cycles
                        try:
                            # Fused blocks take the remaining step
                            # budget (loop blocks iterate internally
                            # until it nears exhaustion) and return
                            # the number of instructions executed.
                            done = b[0](limit - steps)
                        except BaseException as exc:
                            done = self._fault_index(b, exc)
                            steps += done
                            self.cycles += done * insn_cost
                            raise
                        steps += done
                        self.cycles += done * insn_cost
                        if observe:
                            if tstats is not None:
                                st = tstats.get(pc0)
                                if st is None:
                                    tstats[pc0] = \
                                        [1, done, self.cycles - c0]
                                else:
                                    st[0] += 1
                                    st[1] += done
                                    st[2] += self.cycles - c0
                            if flight is not None:
                                flight.record_superblock(
                                    b, self.pc, done, self.cycles)
            # Per-step tier: flight recording, engine="step", and the
            # final strides of a run approaching its step limit.
            while self.running:
                pc = self.pc
                fn = compiled.get(pc)
                if fn is None:
                    fn = compile_one(pc)
                    compiled[pc] = fn
                if icache_on:
                    line = pc >> line_bits
                    idx = line & mask
                    if tags[idx] != line:
                        tags[idx] = line
                        self.cycles += miss_cost
                        self.icache_misses += 1
                if watch:
                    if a_lo <= pc < a_hi:
                        region = 0
                    elif b_lo <= pc < b_hi:
                        region = 1
                    else:
                        region = prev_region
                    if region != prev_region:
                        if prev_region != -1:
                            self.transitions += 1
                        prev_region = region
                fn()
                steps += 1
                self.cycles += insn_cost
                if flight is not None:
                    if pc in fsites:
                        flight.tramp_hit(pc)
                    npc = self.pc
                    if npc != ends[pc]:
                        flight.record_block(npc, self.cycles)
                if steps >= limit:
                    raise MachineFault(
                        f"step limit of {limit} exceeded "
                        f"at pc={self.pc:#x}",
                        pc=self.pc,
                    )
        finally:
            # Committed even when a fault propagates, so failed runs
            # report exactly the instructions that completed.
            self.icount += steps
        return self.exit_code

    # -- closure compiler --------------------------------------------------

    def _compile(self, addr):
        data = self.memory.data
        msize = self.memory.size
        if addr < 0 or addr >= msize:
            raise UnmappedMemoryFault(f"fetch at {addr:#x}", pc=addr)
        try:
            insn = self.spec.decode(data, addr, addr=addr)
        except DecodingError as exc:
            raise IllegalInstructionFault(
                f"illegal instruction at {addr:#x}: {exc}", pc=addr
            )
        self._ends[addr] = addr + insn.length
        self._insns[addr] = insn
        return self._make_closure(insn, data, msize)

    # -- superblock fuser --------------------------------------------------

    def _build_block(self, addr):
        """Fuse the execution trace starting at ``addr`` into a
        superblock.

        Trace formation (the default): decoding follows the
        *fall-through* of conditional branches (emitted as side exits)
        and follows unconditional ``jmp``s (their taken-branch cost is
        inlined), so a whole loop — head test, body, backward latch —
        fuses into one block.  A branch or jmp targeting the trace's
        own start closes it into a *loop trace* that iterates inside
        the generated function.  Traces end at indirect/kernel
        transfers (``jmpr``/``call``/``callr``/``ret``/``trap``/
        ``syscall``), at a jmp to an address already in the trace, at
        :data:`SUPERBLOCK_CAP`, at watch-region boundaries, and at
        unfetchable addresses.

        Under an i-cache cost model the trace is instead cut at *any*
        control transfer, because the segmented dispatch below must
        see a strictly sequential closure list to charge misses in
        per-step order.

        The block record is a tuple ``(fn, n, region, segs, addrs,
        linemap, filename)``:

        * ``fn`` — the fused block function; called with the remaining
          step budget, returns the number of instructions executed;
        * ``n`` — instructions per full pass through the trace (early
          side exits return less; loop traces return accumulated
          totals);
        * ``region`` — the watch-region class shared by every
          instruction: traces are cut at watch-region boundaries, so a
          single entry check reproduces the per-step transition count;
        * ``segs`` — per-i-cache-line segments ``(line, set_index,
          closures, n, cycles)``, built only under an i-cache cost
          model, so misses are charged per line actually crossed;
        * ``addrs``/``linemap``/``filename`` — fault forensics: the
          instruction addresses plus the generated-source line ->
          ``(index, restore_pc)`` map that reconstructs exact partial
          accounting when a block faults mid-flight;
        * ``alloc``/``nowb`` — the guest registers promoted to frame
          locals by :meth:`_fuse` and the closure-call lines where a
          fault must not write those locals back.
        """
        telem = self.telemetry
        t0 = perf_counter() if telem is not None else 0.0
        compiled = self._compiled
        decoded = self._insns
        watch = self._watch_regions
        if watch:
            (a_lo, a_hi), (b_lo, b_hi) = watch
        trace = not self.costs.icache_enabled
        reason = None   # why the trace ended (telemetry trace shape)
        data = self.memory.data
        msize = self.memory.size
        regs = self.regs
        pushes = self.spec.call_pushes_return_address
        items = []      # (kind, insn, extra)
        addrs = []
        callstack = []  # return addresses of calls followed in-trace
        # Static effects on the return-address machinery since trace
        # start, used to predict where an unmatched ``ret`` lands:
        # the net SP displacement (while statically known) and whether
        # the link register has been overwritten.
        sp_delta = 0
        sp_known = True
        lr_dirty = False
        region = None
        a = addr
        while True:
            fn = compiled.get(a)
            if fn is None:
                try:
                    fn = self._compile(a)
                except MachineFault:
                    if not items:
                        raise   # faulting first fetch: as per-step
                    reason = "unfetchable"
                    break       # seal here; the next dispatch faults
                compiled[a] = fn
            insn = decoded[a]
            if watch:
                r = (0 if a_lo <= a < a_hi
                     else 1 if b_lo <= a < b_hi else None)
                if not items:
                    region = r
                elif r != region:
                    reason = "watch-boundary"
                    break       # watch-region boundary ends the trace
            mn = insn.mnemonic
            addrs.append(a)
            if mn in _COND and trace:
                target = a + insn.operands[2]
                if target == addr:
                    items.append(("condclose", insn, None))
                    reason = "loop-cond"
                    break
                items.append(("cond", insn, None))
                a += insn.length
            elif mn in ("jmp", "jmp.s") and trace:
                target = a + insn.operands[0]
                if target == addr:
                    items.append(("jmpclose", insn, None))
                    reason = "loop-jmp"
                    break
                items.append(("jmp", insn, None))
                a = target
            elif mn == "call" and trace:
                # Direct call: the return address is a compile-time
                # constant, so the push/link inlines and the trace
                # continues into the callee.
                items.append(("call", insn, None))
                callstack.append(a + insn.length)
                if pushes:
                    sp_delta -= 8
                else:
                    lr_dirty = True
                a = a + insn.operands[0]
            elif mn == "callr" and trace \
                    and regs[insn.operands[0]] < msize:
                # Indirect call: speculate on the target the register
                # holds right now (block building happens mid-run, at
                # first execution); the generated code re-reads the
                # register and exits the trace if it disagrees.
                observed = regs[insn.operands[0]]
                items.append(("callr", insn, observed))
                callstack.append(a + insn.length)
                if pushes:
                    sp_delta -= 8
                else:
                    lr_dirty = True
                a = observed
            elif mn == "jmpr" and trace \
                    and regs[insn.operands[0]] < msize:
                observed = regs[insn.operands[0]]
                items.append(("jmpr", insn, observed))
                a = observed
            elif mn == "ret" and trace \
                    and (expected := self._predict_return(
                        callstack, sp_delta, sp_known,
                        lr_dirty)) is not None:
                # Speculate the return lands at the matching call's
                # continuation (or, for a trace entered at a callee,
                # at the return address the stack/link register holds
                # now); the generated code pops the real return
                # address and exits the trace if it disagrees.
                items.append(("ret", insn, expected))
                if pushes:
                    sp_delta += 8
                a = expected
            elif mn in _TRANSFERS:
                items.append(("end", insn, fn))
                reason = f"transfer:{mn}"
                break
            else:
                if mn == "push":
                    sp_delta -= 8
                elif mn == "pop":
                    sp_delta += 8
                if mn != "push" and insn.operands \
                        and isinstance(insn.operands[0], int):
                    # operands[0] is the destination for every
                    # register-writing straight-line insn (for stores
                    # it is a source — flagging those too merely costs
                    # a speculation opportunity).
                    if insn.operands[0] == SP:
                        sp_known = False
                    if insn.operands[0] == LR:
                        lr_dirty = True
                items.append(("s", insn, fn))
                a += insn.length
            if len(items) >= SUPERBLOCK_CAP:
                break
        n = len(items)
        if self.costs.icache_enabled:
            # Segment the block by i-cache line, grouping consecutive
            # runs of equal lines: the first instruction of a run can
            # miss, the rest are guaranteed hits (nothing else touches
            # the set in between), which is exactly the per-step check
            # sequence.
            insn_cost = self.costs.insn
            line_bits = self.costs.icache_line_bits
            mask = self.costs.icache_lines - 1
            groups = []
            for (_, _, fn), ia in zip(items, addrs):
                line = ia >> line_bits
                if groups and groups[-1][0] == line:
                    groups[-1][2].append(fn)
                else:
                    groups.append([line, line & mask, [fn]])
            segs = tuple(
                (line, idx, tuple(seg), len(seg), len(seg) * insn_cost)
                for line, idx, seg in groups
            )
            fused = linemap = filename = None
            alloc, nowb = (), frozenset()
            fuse_stats = (n, 0)   # every insn runs via its closure
        else:
            segs = None
            fused, linemap, filename, alloc, nowb, fuse_stats = \
                self._fuse(items, addrs)
        block = (fused, n, region, segs, tuple(addrs),
                 linemap, filename, alloc, nowb)
        self._blocks[addr] = block
        if telem is not None:
            telem.record_compile(
                addr, n,
                loop=items[-1][0] in ("condclose", "jmpclose"),
                reason=reason if reason is not None else "cap",
                seconds=perf_counter() - t0,
                closure_insns=fuse_stats[0],
                source_lines=fuse_stats[1],
                alloc_regs=len(alloc))
        return block

    def _predict_return(self, callstack, sp_delta, sp_known, lr_dirty):
        """Where the next ``ret`` most plausibly lands, or ``None``.

        A call followed earlier in the trace pins the answer (and is
        popped off ``callstack`` here).  Otherwise — a trace entered at
        a callee — the prediction reads the return-address slot the
        machine holds *right now*: the stack slot at the statically
        tracked SP displacement, or the link register if untouched.
        Mispredictions are harmless: the generated guard compares
        against the real popped address and exits the trace with it.
        """
        if callstack:
            return callstack.pop()
        if self.spec.call_pushes_return_address:
            if not sp_known:
                return None
            slot = (self.regs[SP] + sp_delta) & _MASK
            if slot + 8 > self.memory.size:
                return None
            p = int.from_bytes(self.memory.data[slot:slot + 8],
                               "little")
        else:
            if lr_dirty:
                return None
            p = self.regs[LR]
        return p if p < self.memory.size else None

    def _fuse(self, items, addrs):
        """Generate the fused block function for a trace.

        Inlinable instructions become Python source; the rest call
        their per-step closures (bound as default-argument locals).
        The generated function takes the remaining step budget and
        returns the number of instructions it executed.  Two shapes:

        * a *plain trace* runs each instruction at most once.
          Conditional branches become side exits (taken path sets the
          pc, accounts the branch, and returns its instruction count);
          followed jmps inline their taken-branch accounting; the end
          either calls a terminator closure or seals ``s.pc`` once.
        * a *loop trace* — closed by a branch or ``jmp`` back to the
          trace's own start — wraps the same body in ``while True``,
          deferring taken-branch accounting to frame-local counters
          (``done`` instructions retired in finished passes, ``t``
          taken branches), flushed at every exit.  Hot loops re-enter
          the generated ``while`` without touching the dispatch loop
          at all, which is where superblocks beat per-step execution
          by a wide margin.  The closing branch stops iterating when
          one more pass would reach the step budget.

        When an :class:`~repro.obs.engine.EngineTelemetry` is attached,
        every speculation guard (``callr``/``jmpr``/``ret``) also gets
        a hit counter (one list-index increment on the fall-through
        path, bound as ``gh{k}``) and a miss recorder (``gm{k}``, on
        the trace-exiting path) baked into the generated source.  Both
        are pure side effects on pre-bound objects: accounting, fault
        recovery, and the register-allocation pass are untouched, so
        instrumented blocks stay bit-identical in every observable.

        Returns ``(function, linemap, filename, alloc, nowb,
        (closure_insns, source_lines))``.
        ``linemap`` maps generated line numbers to ``(index,
        restore_pc)``: ``index`` is the number of instructions
        completed *within the current pass* when that line raises
        (total = frame-local ``done`` + ``index``), and ``restore_pc``
        marks lines where the faulting instruction's pc must be
        re-established (kernel-entering closures and post-branch
        bookkeeping manage ``s.pc`` themselves).  ``alloc`` lists the
        guest registers promoted to frame locals and ``nowb`` the line
        numbers of closure calls, where fault recovery must *not*
        write the (stale) locals back over the register file.
        """
        msize = self.memory.size
        costs = self.costs
        tb_cost = costs.taken_branch
        call_cost = costs.call
        ret_cost = costs.ret
        pushes = self.spec.call_pushes_return_address
        names = [("s", self), ("r", self.regs),
                 ("d", self.memory.data),
                 ("UF", UnmappedMemoryFault)]
        names.extend(_MEM_OPS.items())
        telem = self.telemetry

        def bind_guard(k, insn, kind, extra):
            site = telem.guard_site(insn.addr, kind, extra)
            names.append((f"gh{k}", site.counts))
            names.append((f"gm{k}", site.record_miss))
        n = len(items)
        last_kind = items[-1][0]
        loop = last_kind in ("condclose", "jmpclose")
        start = addrs[0]
        kinds = {kind for kind, _, _ in items}
        # Deferred cost counters for loop traces: taken branches (t),
        # calls (u), returns (w); flushed at every exit and on fault.
        counters = []
        if loop:
            if kinds & {"cond", "jmp", "jmpr", "condclose",
                        "jmpclose"}:
                counters.append(("t", tb_cost))
            if kinds & {"call", "callr"}:
                counters.append(("u", call_cost))
            if "ret" in kinds:
                counters.append(("w", ret_cost))
        flush_lines = []
        if counters:
            flush_lines.append(
                "s.cycles += "
                + " + ".join(f"{c} * {cost}" for c, cost in counters))
            flush_lines.append(
                "s.taken_branches += "
                + " + ".join(c for c, _ in counters))

        body = []   # (source line, linemap entry or None)

        def emit(indent, text, entry=None):
            body.append(("    " * indent + text, entry))

        def emit_flush(depth, entry):
            for text in flush_lines:
                emit(depth, text, entry)

        def emit_compare(depth, insn, k):
            ra, rb, _ = insn.operands
            emit(depth, f"x = r[{ra}]", (k, True))
            emit(depth, f"y = r[{rb}]", (k, True))
            emit(depth, f"if x >= {_SIGN}: x -= {1 << 64}", (k, True))
            emit(depth, f"if y >= {_SIGN}: y -= {1 << 64}", (k, True))
            emit(depth, f"if x {_COND_SRC[insn.mnemonic]} y:",
                 (k, True))

        depth = 2 if loop else 1
        if loop:
            emit(1, "done = 0")
            for c, _ in counters:
                emit(1, f"{c} = 0")
            emit(1, "while True:")
        for k, (kind, insn, extra) in enumerate(items):
            if kind == "s":
                lines = _inline_src(insn, msize)
                if lines is None:
                    names.append((f"c{k}", extra))
                    emit(depth, f"c{k}()", (k, True))
                else:
                    for line in lines:
                        emit(depth, line, (k, True))
            elif kind == "cond":
                target = insn.addr + insn.operands[2]
                emit_compare(depth, insn, k)
                emit(depth + 1, f"s.pc = {target}", (k + 1, False))
                if loop:
                    emit(depth + 1, "t += 1", (k + 1, False))
                    emit_flush(depth + 1, (k + 1, False))
                    emit(depth + 1, f"return done + {k + 1}",
                         (k + 1, False))
                else:
                    emit(depth + 1, f"s.cycles += {tb_cost}",
                         (k + 1, False))
                    emit(depth + 1, "s.taken_branches += 1",
                         (k + 1, False))
                    emit(depth + 1, f"return {k + 1}")
            elif kind == "jmp":
                # Followed unconditional jmp: only its cost remains.
                if loop:
                    emit(depth, "t += 1", (k + 1, True))
                else:
                    emit(depth, f"s.cycles += {tb_cost}", (k + 1, True))
                    emit(depth, "s.taken_branches += 1", (k + 1, True))
            elif kind in ("call", "callr"):
                nxt = insn.addr + insn.length
                mn = "call" if kind == "call" else "callr"
                if pushes:
                    emit(depth, f"a = (r[{SP}] - 8) & {_MASK_SRC}",
                         (k, True))
                    emit(depth,
                         f'if a + 8 > {msize}: raise UF(f"{mn} at '
                         f'{{a:#x}}", pc={insn.addr})', (k, True))
                    emit(depth, f"p8(d, a, {nxt})", (k, True))
                    emit(depth, f"r[{SP}] = a", (k, True))
                else:
                    emit(depth, f"r[{LR}] = {nxt}", (k, True))
                if loop:
                    emit(depth, "u += 1", (k + 1, True))
                else:
                    emit(depth, f"s.cycles += {call_cost}",
                         (k + 1, True))
                    emit(depth, "s.taken_branches += 1", (k + 1, True))
                if kind == "callr":
                    if telem is not None:
                        bind_guard(k, insn, "callr", extra)
                    emit(depth, f"p = r[{insn.operands[0]}]",
                         (k + 1, False))
                    emit(depth, f"if p != {extra}:", (k + 1, False))
                    emit(depth + 1, "s.pc = p", (k + 1, False))
                    if telem is not None:
                        emit(depth + 1, f"gm{k}(p)", (k + 1, False))
                    if loop:
                        emit_flush(depth + 1, (k + 1, False))
                        emit(depth + 1, f"return done + {k + 1}",
                             (k + 1, False))
                    else:
                        emit(depth + 1, f"return {k + 1}")
                    if telem is not None:
                        emit(depth, f"gh{k}[0] += 1", (k + 1, True))
            elif kind == "jmpr":
                if telem is not None:
                    bind_guard(k, insn, "jmpr", extra)
                emit(depth, f"p = r[{insn.operands[0]}]", (k, True))
                if loop:
                    emit(depth, "t += 1", (k + 1, False))
                else:
                    emit(depth, f"s.cycles += {tb_cost}",
                         (k + 1, False))
                    emit(depth, "s.taken_branches += 1",
                         (k + 1, False))
                emit(depth, f"if p != {extra}:", (k + 1, False))
                emit(depth + 1, "s.pc = p", (k + 1, False))
                if telem is not None:
                    emit(depth + 1, f"gm{k}(p)", (k + 1, False))
                if loop:
                    emit_flush(depth + 1, (k + 1, False))
                    emit(depth + 1, f"return done + {k + 1}",
                         (k + 1, False))
                else:
                    emit(depth + 1, f"return {k + 1}")
                if telem is not None:
                    emit(depth, f"gh{k}[0] += 1", (k + 1, True))
            elif kind == "ret":
                if pushes:
                    emit(depth, f"a = r[{SP}]", (k, True))
                    emit(depth,
                         f'if a + 8 > {msize}: raise UF(f"ret at '
                         f'{{a:#x}}", pc={insn.addr})', (k, True))
                    emit(depth, "p = u8(d, a)[0]", (k, True))
                    emit(depth, f"r[{SP}] = (a + 8) & {_MASK_SRC}",
                         (k, True))
                else:
                    emit(depth, f"p = r[{LR}]", (k, True))
                if telem is not None:
                    bind_guard(k, insn, "ret", extra)
                if loop:
                    emit(depth, "w += 1", (k + 1, False))
                else:
                    emit(depth, f"s.cycles += {ret_cost}",
                         (k + 1, False))
                    emit(depth, "s.taken_branches += 1",
                         (k + 1, False))
                emit(depth, f"if p != {extra}:", (k + 1, False))
                emit(depth + 1, "s.pc = p", (k + 1, False))
                if telem is not None:
                    emit(depth + 1, f"gm{k}(p)", (k + 1, False))
                if loop:
                    emit_flush(depth + 1, (k + 1, False))
                    emit(depth + 1, f"return done + {k + 1}",
                         (k + 1, False))
                else:
                    emit(depth + 1, f"return {k + 1}")
                if telem is not None:
                    emit(depth, f"gh{k}[0] += 1", (k + 1, True))
            elif kind == "end":
                names.append((f"c{k}", extra))
                emit(1, f"c{k}()",
                     (k, insn.mnemonic not in ("trap", "syscall")))
                emit(1, f"return {n}")
            elif kind == "condclose":
                emit_compare(2, insn, k)
                emit(3, "t += 1", (n, False))
                emit(3, f"done += {n}", (n, False))
                emit(3, f"if done + {n} < budget:", (0, False))
                emit(4, "continue", (0, False))
                emit(3, f"s.pc = {start}", (0, False))
                emit_flush(3, (0, False))
                emit(3, "return done", (0, False))
                emit(2, f"s.pc = {insn.addr + insn.length}", (n, False))
                emit(2, f"done += {n}", (n, False))
                emit_flush(2, (0, False))
                emit(2, "return done", (0, False))
            elif kind == "jmpclose":
                emit(2, "t += 1", (n, False))
                emit(2, f"done += {n}", (n, False))
                emit(2, f"if done + {n} < budget:", (0, False))
                emit(3, "continue", (0, False))
                emit(2, f"s.pc = {start}", (0, False))
                emit_flush(2, (0, False))
                emit(2, "return done", (0, False))
        if last_kind not in ("condclose", "jmpclose", "end"):
            # Trace cut mid-stream (cap, watch boundary, unfetchable
            # next address): seal the pc of the not-taken continuation
            # once for the whole pass.
            kind, last_insn, extra = items[-1]
            if kind in ("s", "cond"):
                seal = last_insn.addr + last_insn.length
            elif kind in ("jmp", "call"):
                seal = last_insn.addr + last_insn.operands[0]
            else:   # ret/callr/jmpr: the guard confirmed this target
                seal = extra
            emit(1, f"s.pc = {seal}", (n, False))
            emit(1, f"return {n}")
        # Register allocation: every guest register the generated code
        # touches becomes a frame local (``r[3]`` -> ``v3``), loaded
        # once at entry, written back at every exit and around closure
        # calls (closures operate on the shared ``r`` list).  Inside a
        # loop trace the registers live in locals across iterations,
        # which is the single biggest throughput lever.  At any fault
        # point the locals *are* the architectural register state;
        # :meth:`_fault_index` writes them back — except when the
        # fault came from inside a closure (``nowb`` lines), where the
        # pre-flushed ``r`` list already carries the closure's partial
        # effects and the locals are stale.
        alloc = tuple(sorted({int(g) for text, _ in body
                              for g in _REG_REF.findall(text)}))
        nowb = set()
        if alloc:
            load = "; ".join(f"v{i} = r[{i}]" for i in alloc)
            store = "; ".join(f"r[{i}] = v{i}" for i in alloc)
            head = 1 + len(counters) if loop else 0
            out = list(body[:head])
            out.append(("    " + load, None))
            if loop:
                out.append(body[head])      # the ``while True:`` line
                head += 1
            for text, entry in body[head:]:
                stripped = text.lstrip()
                indent = text[:len(text) - len(stripped)]
                if _CLOSURE_CALL.match(stripped):
                    out.append((indent + store, None))
                    out.append((text, entry))
                    nowb.add(len(out) + 1)  # final line number
                    out.append((indent + load, None))
                elif stripped.startswith("return"):
                    out.append((indent + store, None))
                    out.append((text, entry))
                else:
                    out.append((_REG_REF.sub(r"v\1", text), entry))
            body = out
        header = ("def _sb(budget, "
                  + ", ".join(f"{nm}=_{nm}" for nm, _ in names) + "):")
        src = header + "\n" + "\n".join(
            text for text, _ in body) + "\n"
        linemap = {}
        for i, (_, entry) in enumerate(body):
            if entry is not None:
                linemap[i + 2] = entry
        filename = (f"<superblock {start:#x}+{n}"
                    f" #{next(_block_ids)}>")
        namespace = {f"_{nm}": value for nm, value in names}
        exec(compile(src, filename, "exec"), namespace)
        closures = sum(1 for nm, _ in names
                       if nm[0] == "c" and nm[1:].isdigit())
        return (namespace["_sb"], linemap, filename, alloc,
                frozenset(nowb), (closures, len(body)))

    def _fault_index(self, block, exc):
        """How many instructions of ``block`` completed before ``exc``.

        Recovered from the traceback's line in the generated source
        plus the generated frame's locals (loop blocks keep their
        iteration progress in ``done``/``t``), so the happy path
        carries no per-instruction bookkeeping at all.  Pending
        taken-branch accounting is flushed here, and the faulting
        instruction's pc is re-established where the per-step tier
        would have it, matching that tier bit for bit.
        """
        linemap = block[5]
        addrs = block[4]
        tb = exc.__traceback__
        while tb is not None:
            frame = tb.tb_frame
            if frame.f_code.co_filename == block[6]:
                idx, restore = linemap.get(tb.tb_lineno, (0, False))
                locs = frame.f_locals
                t = locs.get("t", 0)
                u = locs.get("u", 0)
                w = locs.get("w", 0)
                if t or u or w:
                    self.cycles += (t * self.costs.taken_branch
                                    + u * self.costs.call
                                    + w * self.costs.ret)
                    self.taken_branches += t + u + w
                if block[7] and tb.tb_lineno not in block[8]:
                    # The frame locals are the architectural register
                    # state at the fault point (closure-call lines
                    # excepted: there the pre-flushed register file is
                    # authoritative and the locals are stale).
                    regs = self.regs
                    for i in block[7]:
                        name = f"v{i}"
                        if name in locs:
                            regs[i] = locs[name]
                if restore and idx < len(addrs):
                    self.pc = addrs[idx]
                return locs.get("done", 0) + idx
            tb = tb.tb_next
        return 0

    def _make_closure(self, insn, data, msize):
        self_ = self
        regs = self.regs
        m = insn.mnemonic
        ops = insn.operands
        addr = insn.addr
        nxt = addr + insn.length
        tb_cost = self.costs.taken_branch
        call_cost = self.costs.call
        ret_cost = self.costs.ret

        if m == "nop":
            def fn():
                self_.pc = nxt
            return fn

        if m == "mov":
            rd, ra = ops

            def fn():
                regs[rd] = regs[ra]
                self_.pc = nxt
            return fn

        if m == "movi":
            rd, imm = ops
            value = imm & _MASK

            def fn():
                regs[rd] = value
                self_.pc = nxt
            return fn

        if m == "lis":
            rd, imm = ops
            value = (imm << 16) & _MASK

            def fn():
                regs[rd] = value
                self_.pc = nxt
            return fn

        if m == "addis":
            rd, ra, imm = ops
            delta = imm << 16

            def fn():
                regs[rd] = (regs[ra] + delta) & _MASK
                self_.pc = nxt
            return fn

        if m == "adrp":
            rd, imm = ops
            value = ((addr & ~0xFFF) + (imm << 12)) & _MASK

            def fn():
                regs[rd] = value
                self_.pc = nxt
            return fn

        if m == "addi":
            rd, ra, imm = ops

            def fn():
                regs[rd] = (regs[ra] + imm) & _MASK
                self_.pc = nxt
            return fn

        if m in _ARITH:
            rd, ra, rb = ops
            op = _ARITH[m]

            def fn():
                regs[rd] = op(regs[ra], regs[rb]) & _MASK
                self_.pc = nxt
            return fn

        if m == "shli":
            rd, ra, imm = ops
            sh = imm & 63

            def fn():
                regs[rd] = (regs[ra] << sh) & _MASK
                self_.pc = nxt
            return fn

        if m == "shri":
            rd, ra, imm = ops
            sh = imm & 63

            def fn():
                regs[rd] = regs[ra] >> sh
                self_.pc = nxt
            return fn

        if m == "inc":
            (rd,) = ops

            def fn():
                regs[rd] = (regs[rd] + 1) & _MASK
                self_.pc = nxt
            return fn

        if m in LOAD_SIZES and not m.startswith("ldpc"):
            rd, mem_op = ops
            base = mem_op.base
            disp = mem_op.disp
            size = LOAD_SIZES[m]
            signed = m in SIGNED_LOADS
            bits = size * 8
            sign_bit = 1 << (bits - 1)
            wrap = 1 << bits

            def fn():
                a = (regs[base] + disp) & _MASK
                if a + size > msize:
                    raise UnmappedMemoryFault(
                        f"load at {a:#x} (pc={addr:#x})", pc=addr
                    )
                v = int.from_bytes(data[a:a + size], "little")
                if signed and v & sign_bit:
                    v = (v - wrap) & _MASK
                regs[rd] = v
                self_.pc = nxt
            return fn

        if m in STORE_SIZES:
            rs, mem_op = ops
            base = mem_op.base
            disp = mem_op.disp
            size = STORE_SIZES[m]
            vmask = (1 << (size * 8)) - 1

            def fn():
                a = (regs[base] + disp) & _MASK
                if a + size > msize:
                    raise UnmappedMemoryFault(
                        f"store at {a:#x} (pc={addr:#x})", pc=addr
                    )
                data[a:a + size] = (regs[rs] & vmask).to_bytes(size, "little")
                self_.pc = nxt
            return fn

        if m.startswith("ldpc"):
            rd, disp = ops
            size = LOAD_SIZES[m]
            a = addr + disp
            # The operands are compile-time constants, so the bounds
            # check runs once here instead of on every execution; an
            # out-of-range target keeps its exact runtime-fault
            # behaviour via an always-raising closure.
            if a < 0 or a + size > msize:
                def fn():
                    raise UnmappedMemoryFault(
                        f"pc-relative load at {a:#x}", pc=addr
                    )
                return fn
            hi = a + size

            def fn():
                regs[rd] = int.from_bytes(data[a:hi], "little")
                self_.pc = nxt
            return fn

        if m == "leapc":
            rd, disp = ops
            value = (addr + disp) & _MASK

            def fn():
                regs[rd] = value
                self_.pc = nxt
            return fn

        if m == "push":
            (rs,) = ops

            def fn():
                sp = (regs[SP] - 8) & _MASK
                if sp + 8 > msize:
                    raise UnmappedMemoryFault(f"push at {sp:#x}", pc=addr)
                data[sp:sp + 8] = regs[rs].to_bytes(8, "little")
                regs[SP] = sp
                self_.pc = nxt
            return fn

        if m == "pop":
            (rd,) = ops

            def fn():
                sp = regs[SP]
                if sp + 8 > msize:
                    raise UnmappedMemoryFault(f"pop at {sp:#x}", pc=addr)
                regs[rd] = int.from_bytes(data[sp:sp + 8], "little")
                regs[SP] = (sp + 8) & _MASK
                self_.pc = nxt
            return fn

        if m in ("jmp", "jmp.s"):
            target = addr + ops[0]

            def fn():
                self_.pc = target
                self_.cycles += tb_cost
                self_.taken_branches += 1
            return fn

        if m in _COND:
            ra, rb, disp = ops
            target = addr + disp
            cond = _COND[m]

            def fn():
                x = regs[ra]
                y = regs[rb]
                if x >= _SIGN:
                    x -= 1 << 64
                if y >= _SIGN:
                    y -= 1 << 64
                if cond(x, y):
                    self_.pc = target
                    self_.cycles += tb_cost
                    self_.taken_branches += 1
                else:
                    self_.pc = nxt
            return fn

        if m == "jmpr":
            (rt,) = ops

            def fn():
                self_.pc = regs[rt]
                self_.cycles += tb_cost
                self_.taken_branches += 1
            return fn

        if m == "call":
            target = addr + ops[0]
            if self.spec.call_pushes_return_address:
                def fn():
                    sp = (regs[SP] - 8) & _MASK
                    if sp + 8 > msize:
                        raise UnmappedMemoryFault(f"call at {sp:#x}", pc=addr)
                    data[sp:sp + 8] = nxt.to_bytes(8, "little")
                    regs[SP] = sp
                    self_.pc = target
                    self_.cycles += call_cost
                    self_.taken_branches += 1
            else:
                def fn():
                    regs[LR] = nxt
                    self_.pc = target
                    self_.cycles += call_cost
                    self_.taken_branches += 1
            return fn

        if m == "callr":
            (rt,) = ops
            if self.spec.call_pushes_return_address:
                def fn():
                    sp = (regs[SP] - 8) & _MASK
                    if sp + 8 > msize:
                        raise UnmappedMemoryFault(f"callr at {sp:#x}", pc=addr)
                    data[sp:sp + 8] = nxt.to_bytes(8, "little")
                    regs[SP] = sp
                    self_.pc = regs[rt]
                    self_.cycles += call_cost
                    self_.taken_branches += 1
            else:
                def fn():
                    regs[LR] = nxt
                    self_.pc = regs[rt]
                    self_.cycles += call_cost
                    self_.taken_branches += 1
            return fn

        if m == "ret":
            if self.spec.call_pushes_return_address:
                def fn():
                    sp = regs[SP]
                    if sp + 8 > msize:
                        raise UnmappedMemoryFault(f"ret at {sp:#x}", pc=addr)
                    self_.pc = int.from_bytes(data[sp:sp + 8], "little")
                    regs[SP] = (sp + 8) & _MASK
                    self_.cycles += ret_cost
                    self_.taken_branches += 1
            else:
                def fn():
                    self_.pc = regs[LR]
                    self_.cycles += ret_cost
                    self_.taken_branches += 1
            return fn

        if m == "trap":
            def fn():
                self_.pc = addr
                self_.kernel.handle_trap(self_)
            return fn

        if m == "syscall":
            (num,) = ops

            def fn():
                self_.pc = addr
                self_.kernel.syscall(self_, num)
                if self_.running and self_.pc == addr:
                    self_.pc = nxt
            return fn

        raise IllegalInstructionFault(
            f"unimplemented mnemonic {m} at {addr:#x}", pc=addr
        )
