"""The emulated machine: memory, CPU, kernel, loader and unwinder."""

from repro.machine.costs import CostModel
from repro.machine.cpu import CPU, DEFAULT_STEP_LIMIT
from repro.machine.kernel import (
    Kernel,
    SYS_DYNTRANS,
    SYS_EXIT,
    SYS_GC,
    SYS_PRINT,
    SYS_THROW,
)
from repro.machine.loader import DEFAULT_PIE_BIAS, LoadedImage, load_binary
from repro.machine.machine import Machine, RunResult, machine_for, run_binary
from repro.machine.memory import Memory
from repro.machine.unwind import Unwinder

__all__ = [
    "CostModel",
    "CPU",
    "DEFAULT_STEP_LIMIT",
    "Kernel",
    "SYS_EXIT",
    "SYS_PRINT",
    "SYS_THROW",
    "SYS_GC",
    "SYS_DYNTRANS",
    "LoadedImage",
    "load_binary",
    "DEFAULT_PIE_BIAS",
    "Machine",
    "RunResult",
    "machine_for",
    "run_binary",
    "Memory",
    "Unwinder",
]
