"""frdwarf-style compiled unwinding (paper Section 2.3).

The paper argues that runtime RA translation — unlike BOLT-style DWARF
rewriting — composes with *non-DWARF* unwinding techniques, citing
frdwarf, which "compiles" ``.eh_frame`` into directly executable unwind
steps and is about 10x faster per frame than DWARF interpretation.

:class:`FastUnwinder` models that: at load time it compiles each image's
unwind metadata into sorted arrays (bisect lookup instead of the linear
DWARF-record walk) and charges :data:`FAST_UNWIND_DIVISOR`-times-cheaper
per-frame cost.  It is a drop-in replacement for
:class:`repro.machine.unwind.Unwinder`; RA translation hooks are invoked
at exactly the same points, so a rewritten binary unwinds correctly under
either engine — which is the paper's compositionality claim.
"""

import bisect

from repro.machine.unwind import Unwinder

#: frdwarf's measured speedup over DWARF-based unwinding.
FAST_UNWIND_DIVISOR = 10


class _CompiledImage:
    """Per-image compiled lookup structures."""

    def __init__(self, binary):
        recipes = sorted(binary.unwind.recipes, key=lambda r: r.start)
        self.recipe_starts = [r.start for r in recipes]
        self.recipes = recipes
        pads = sorted(binary.landing_pads,
                      key=lambda p: (p.call_site_start,
                                     p.call_site_end
                                     - p.call_site_start))
        self.pads = pads
        funcs = sorted(binary.func_table, key=lambda f: f.start)
        self.func_starts = [f.start for f in funcs]
        self.funcs = funcs

    def pad_for(self, pc):
        # Innermost-first: the pads list is ordered by (start, size), so
        # among covering pads the narrowest (innermost) wins.
        best = None
        for pad in self.pads:
            if pad.covers(pc):
                if best is None or (pad.call_site_end
                                    - pad.call_site_start) < (
                                        best.call_site_end
                                        - best.call_site_start):
                    best = pad
        return best

    def func_for(self, pc):
        idx = bisect.bisect_right(self.func_starts, pc) - 1
        if idx >= 0 and self.funcs[idx].covers(pc):
            return self.funcs[idx]
        return None


class FastUnwinder(Unwinder):
    """Compiled (frdwarf-like) unwinding engine."""

    engine = "frdwarf"

    def __init__(self, kernel):
        super().__init__(kernel)
        self._compiled = {}
        # Per-frame work is ~10x cheaper than DWARF interpretation.
        self._frame_cost = max(
            1, kernel.costs.unwind_frame // FAST_UNWIND_DIVISOR
        )

    def _image_tables(self, binary):
        key = id(binary)
        if key not in self._compiled:
            self._compiled[key] = _CompiledImage(binary)
        return self._compiled[key]

    # The base Unwinder charges kernel.costs.unwind_frame per frame; we
    # credit back the difference after each walk.

    def throw(self, cpu, payload):
        frames_before = self.kernel.counters["unwound_frames"]
        try:
            return super().throw(cpu, payload)
        finally:
            walked = (self.kernel.counters["unwound_frames"]
                      - frames_before)
            cpu.cycles -= walked * (self.kernel.costs.unwind_frame
                                    - self._frame_cost)

    def traceback(self, cpu):
        frames_before = self.kernel.counters["unwound_frames"]
        try:
            return super().traceback(cpu)
        finally:
            walked = (self.kernel.counters["unwound_frames"]
                      - frames_before)
            cpu.cycles -= walked * (self.kernel.costs.unwind_frame
                                    - self._frame_cost)

    def _find_landing_pad(self, binary, orig_pc):
        return self._image_tables(binary).pad_for(orig_pc)

    def _findfunc(self, binary, orig_pc):
        return self._image_tables(binary).func_for(orig_pc)


def install_fast_unwinder(machine):
    """Swap a machine's unwinder for the compiled engine."""
    machine.kernel.unwinder = FastUnwinder(machine.kernel)
    return machine.kernel.unwinder
