"""The stack-unwinding runtime.

Models the two language runtimes whose unwinding the paper supports
(Section 6):

* **C++ exceptions** — :meth:`Unwinder.throw` walks call frames using the
  original binary's ``.eh_frame``-like recipes, searching each frame's
  landing-pad table for a handler.  Every PC it consults passes through
  :meth:`Kernel.translate_unwind_pc`, the model of wrapping libunwind's
  ``_ULx86_64_step`` with the RA-translation routine.

* **Go tracebacks** — :meth:`Unwinder.traceback` resolves every frame PC
  through the binary's ``pclntab``-like function table (``findfunc``);
  a PC that resolves to nothing aborts with Go's "unknown pc" fatal
  error.  PCs pass through :meth:`Kernel.translate_go_pc`, the model of
  instrumenting ``runtime.findfunc``/``runtime.pcvalue`` entries.

Both walks are the *language runtime*, not user code: they read the
emulated stack and registers but run at Python level, charging
:attr:`CostModel.unwind_frame` cycles per frame (frame unwinding is
expensive — DWARF lookups and register-state updates — which is why one
extra translation per frame is negligible, the paper's core cost
argument).
"""

from repro.binfmt.unwind import RA_IN_LR, RA_ON_STACK
from repro.isa.registers import LR, R0, SP
from repro.util.errors import UnwindError


class Unwinder:
    """DWARF-style frame walker over the emulated stack."""

    #: Engine tag surfaced in flight-recorder unwind events.
    engine = "dwarf"

    def __init__(self, kernel):
        self.kernel = kernel

    # -- C++ exceptions ---------------------------------------------------

    def throw(self, cpu, payload):
        """Raise an exception at ``cpu.pc``; transfers to a handler.

        Raises :class:`UnwindError` when no frame catches (std::terminate)
        or when a frame PC has no unwind recipe (broken unwind info — the
        failure rewriting without RA translation produces).
        """
        before = self.kernel.counters["unwound_frames"]
        try:
            return self._throw(cpu, payload)
        finally:
            fl = self.kernel.flight
            if fl is not None:
                fl.unwind_event(
                    "throw", self.engine,
                    self.kernel.counters["unwound_frames"] - before,
                )

    def _throw(self, cpu, payload):
        kernel = self.kernel
        pc = kernel.translate_unwind_pc(cpu.pc, cpu)
        sp = cpu.regs[SP]
        first_frame = True
        for _ in range(4096):
            cpu.cycles += kernel.costs.unwind_frame
            kernel.counters["unwound_frames"] += 1
            # Return addresses point one past the call; the standard
            # unwinder convention looks frames up at ip-1 so a call at
            # the very end of a try region still finds its handler.
            lookup = pc if first_frame else pc - 1
            image = kernel.image_at(lookup)
            if image is None:
                raise UnwindError(
                    f"unwind pc {pc:#x} is outside every loaded image"
                )
            orig_pc = image.to_orig(lookup)
            binary = image.binary
            pad = self._find_landing_pad(binary, orig_pc)
            if pad is not None:
                cpu.pc = image.to_loaded(pad.handler)
                cpu.regs[R0] = payload
                cpu.regs[SP] = sp
                return
            recipe = binary.unwind.recipe_for(orig_pc)
            if recipe is None:
                raise UnwindError(
                    f"no unwind recipe for pc {orig_pc:#x} in {binary.name}"
                )
            ra = self._frame_return_address(cpu, sp, recipe, first_frame)
            # DWARF register rules: popping this frame restores the
            # callee-saved registers it spilled, so handler-frame locals
            # survive the throw.
            for reg, offset in recipe.saved_regs:
                cpu.regs[reg] = kernel.memory.read_int(sp + offset, 8)
            sp += recipe.frame_size
            ra = kernel.translate_unwind_pc(ra, cpu)
            if ra == 0:
                raise UnwindError("uncaught exception (std::terminate)")
            pc = ra
            first_frame = False
        raise UnwindError("unwind did not terminate (corrupt stack?)")

    # -- Go tracebacks ------------------------------------------------------

    def traceback(self, cpu):
        """Walk every frame like Go's GC/scheduler does; returns frame names.

        Raises :class:`UnwindError` ("unknown pc") when a frame PC is not
        covered by the function table.
        """
        before = self.kernel.counters["unwound_frames"]
        try:
            return self._traceback(cpu)
        finally:
            fl = self.kernel.flight
            if fl is not None:
                fl.unwind_event(
                    "traceback", self.engine,
                    self.kernel.counters["unwound_frames"] - before,
                )

    def _traceback(self, cpu):
        kernel = self.kernel
        pc = kernel.translate_go_pc(cpu.pc, cpu)
        sp = cpu.regs[SP]
        first_frame = True
        frames = []
        for _ in range(4096):
            cpu.cycles += kernel.costs.unwind_frame
            kernel.counters["unwound_frames"] += 1
            lookup = pc if first_frame else pc - 1
            image = kernel.image_at(lookup)
            if image is None:
                raise UnwindError(f"runtime: unknown pc {pc:#x}")
            orig_pc = image.to_orig(lookup)
            binary = image.binary
            func = self._findfunc(binary, orig_pc)
            if func is None:
                raise UnwindError(
                    f"runtime: unknown pc {orig_pc:#x} in {binary.name}"
                )
            frames.append(func.name)
            recipe = binary.unwind.recipe_for(orig_pc)
            if recipe is None:
                raise UnwindError(
                    f"runtime: no frame info for pc {orig_pc:#x}"
                )
            ra = self._frame_return_address(cpu, sp, recipe, first_frame)
            sp += recipe.frame_size
            ra = kernel.translate_go_pc(ra, cpu)
            if ra == 0:
                return frames
            pc = ra
            first_frame = False
        raise UnwindError("traceback did not terminate (corrupt stack?)")

    # -- helpers ------------------------------------------------------------------

    def _frame_return_address(self, cpu, sp, recipe, first_frame):
        if recipe.ra_rule == RA_IN_LR:
            if not first_frame:
                raise UnwindError(
                    "RA-in-LR recipe in a non-innermost frame"
                )
            return cpu.regs[LR]
        if recipe.ra_rule == RA_ON_STACK:
            return self.kernel.memory.read_int(sp + recipe.ra_offset, 8)
        raise UnwindError(f"unknown ra_rule {recipe.ra_rule}")

    @staticmethod
    def _find_landing_pad(binary, orig_pc):
        for pad in binary.landing_pads:
            if pad.covers(orig_pc):
                return pad
        return None

    @staticmethod
    def _findfunc(binary, orig_pc):
        for func in binary.func_table:
            if func.covers(orig_pc):
                return func
        return None
