"""Printers that regenerate the paper's Tables 1, 2 and 3."""

from repro.core.trampolines import catalog
from repro.isa import get_arch

# ---------------------------------------------------------------------------
# Table 1 — comparison of binary rewriting approaches.  The capability
# matrix is derived from the implemented rewriters' documented behaviour,
# not hand-copied prose: each row names the module that realizes it.
# ---------------------------------------------------------------------------

TABLE1_ROWS = [
    # approach, rewrites, relocation use, unmodified CF, stack unwinding
    ("BOLT", "", "Link time", "", "Update DWARF",
     "repro.baselines.bolt"),
    ("Egalito-like", "Indirect", "Run time", "NA", "NA",
     "repro.baselines.ir_lowering"),
    ("E9Patch-like", "No", "None", "Patching", "NA",
     "repro.baselines.instruction_patching"),
    ("Multiverse-like", "Direct", "None", "Dynamic translation",
     "Call emulation", "repro.baselines.dynamic_translation"),
    ("RetroWrite-like", "Indirect", "Run time", "NA", "NA",
     "repro.baselines.ir_lowering"),
    ("SRBI", "Direct", "None", "Patching", "Call emulation",
     "repro.baselines.srbi"),
    ("This work", "Indirect", "None", "Patching",
     "Dynamic translation", "repro.core.rewriter"),
]


def table1():
    """Render Table 1 (approach comparison) as text."""
    header = (
        f"{'Approach':<17} {'Rewrites':<9} {'Relocation':<11} "
        f"{'Unmodified CF':<20} {'Stack unwinding':<20} Module"
    )
    lines = [header, "-" * len(header)]
    for row in TABLE1_ROWS:
        name, rewrites, reloc, unmod, unwind, module = row
        lines.append(
            f"{name:<17} {rewrites:<9} {reloc:<11} {unmod:<20} "
            f"{unwind:<20} {module}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 2 — trampoline instruction sequences, read off the implemented
# catalog (ranges are the simulation-scaled values actually enforced).
# ---------------------------------------------------------------------------

def table2():
    """Render Table 2 (trampoline sequences) as text."""
    lines = [
        f"{'Arch.':<9} {'Instructions':<58} {'Range':>10} {'Len.':>6}",
        "-" * 88,
    ]
    for arch in ("x86", "ppc64", "aarch64"):
        spec = get_arch(arch)
        for desc, reach, length in catalog(spec):
            reach_str = _human_range(reach)
            lines.append(
                f"{arch:<9} {desc:<58} {reach_str:>10} {length:>5}B"
            )
    return "\n".join(lines)


def _human_range(reach):
    if reach >= 1 << 30:
        return f"±{reach >> 30}GB"
    if reach >= 1 << 20:
        return f"±{reach >> 20}MB"
    if reach >= 1 << 10:
        return f"±{reach >> 10}KB"
    return f"±{reach}B"


# ---------------------------------------------------------------------------
# Table 3 — block-level empty instrumentation results.
# ---------------------------------------------------------------------------

def _pct(value, digits=2):
    if value is None:
        return "   --  "
    return f"{value * 100:6.{digits}f}%"


def table3(results_by_arch):
    """Render Table 3 from {arch: {tool: summary dict}} (see
    :func:`repro.eval.harness.summarize`)."""
    lines = []
    header = (
        f"{'':<12} {'Time overhead':^17} {'Coverage':^17} "
        f"{'Size increase':^17} {'Pass':>5}"
    )
    sub = (
        f"{'':<12} {'max':^8} {'mean':^8} {'min':^8} {'mean':^8} "
        f"{'max':^8} {'mean':^8}"
    )
    for arch, tools in results_by_arch.items():
        lines.append(arch)
        lines.append(header)
        lines.append(sub)
        for tool, summary in tools.items():
            lines.append(
                f"{tool:<12} "
                f"{_pct(summary['overhead_max'])} "
                f"{_pct(summary['overhead_mean'])} "
                f"{_pct(summary['coverage_min'])} "
                f"{_pct(summary['coverage_mean'])} "
                f"{_pct(summary['size_max'])} "
                f"{_pct(summary['size_mean'])} "
                f"{summary['pass']:>3}/{summary['total']}"
            )
        lines.append("")
    return "\n".join(lines)
