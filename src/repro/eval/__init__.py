"""Evaluation harness: tool drivers, aggregation, table printers, and
the per-experiment reproductions of every table and figure."""

from repro.eval.diffrun import (
    Divergence,
    ForensicsBundle,
    differential_run,
    render_forensics,
)
from repro.eval.harness import (
    ToolRun,
    baseline_run,
    evaluate_tool,
    make_tool,
    summarize,
    TOOL_NAMES,
)
from repro.eval.tables import table1, table2, table3
from repro.eval.experiments import (
    bolt_comparison,
    diogenes_case_study,
    docker_experiment,
    failure_modes,
    firefox_experiment,
    spec2017,
    TABLE3_TOOLS,
)

__all__ = [
    "Divergence",
    "ForensicsBundle",
    "differential_run",
    "render_forensics",
    "ToolRun",
    "baseline_run",
    "evaluate_tool",
    "make_tool",
    "summarize",
    "TOOL_NAMES",
    "table1",
    "table2",
    "table3",
    "spec2017",
    "TABLE3_TOOLS",
    "firefox_experiment",
    "docker_experiment",
    "bolt_comparison",
    "diogenes_case_study",
    "failure_modes",
]
