"""Per-experiment drivers for every table and figure of the paper.

Each function regenerates one artifact (see DESIGN.md's experiment
index); the matching pytest benchmarks in ``benchmarks/`` call these and
print the rows.
"""

from dataclasses import dataclass, field

from repro.analysis import FailurePlan, inject_failures
from repro.baselines import BoltOptimizer, SrbiRewriter, is_corrupted
from repro.core import (
    CountingInstrumentation,
    EmptyInstrumentation,
    IncrementalRewriter,
    RewriteMode,
)
from repro.eval.harness import baseline_run, evaluate_tool, summarize
from repro.machine import run_binary
from repro.toolchain import interpret
from repro.toolchain.workloads import (
    SPEC_BENCHMARK_NAMES,
    build_workload,
    docker_like,
    firefox_like,
    libcuda_like,
    spec_workload,
)
from repro.util.errors import IllegalInstructionFault, MachineFault, ReproError

#: Table 3 tool rows (ir-lowering runs on the PIE build, as the paper
#: compiled the benchmarks with -pie for Egalito).
TABLE3_TOOLS = ("srbi", "dir", "jt", "func-ptr", "ir-lowering")


# ---------------------------------------------------------------------------
# Table 3 — SPEC CPU 2017-like block-level empty instrumentation
# ---------------------------------------------------------------------------

def spec2017(arch, tools=TABLE3_TOOLS, benchmarks=None):
    """Run the Table 3 experiment for one architecture.

    Returns {tool: summary dict}; summaries aggregate the per-benchmark
    ToolRuns exactly as the paper's columns do.
    """
    benchmarks = benchmarks or SPEC_BENCHMARK_NAMES
    runs = {tool: [] for tool in tools}
    for name in benchmarks:
        program, binary = build_workload(spec_workload(name, arch), arch)
        oracle, base_cycles = baseline_run(binary)
        pie_binary = None
        for tool in tools:
            if tool == "ir-lowering":
                if pie_binary is None:
                    _, pie_binary = build_workload(
                        spec_workload(name, arch, pie=True), arch
                    )
                pie_oracle, pie_cycles = baseline_run(pie_binary)
                run = evaluate_tool(tool, pie_binary, pie_oracle,
                                    pie_cycles, benchmark=name)
            else:
                run = evaluate_tool(tool, binary, oracle, base_cycles,
                                    benchmark=name)
            runs[tool].append(run)
    return {tool: summarize(rs) for tool, rs in runs.items()}, runs


# ---------------------------------------------------------------------------
# Section 8.2 — Firefox libxul.so-like and Docker-like experiments
# ---------------------------------------------------------------------------

@dataclass
class AppResult:
    app: str
    tool_runs: dict = field(default_factory=dict)
    notes: list = field(default_factory=list)


def firefox_experiment():
    """Rewrite the large Rust/C++ shared-library workload (Section 8.2)."""
    program, binary = firefox_like()
    oracle, base_cycles = baseline_run(binary)
    result = AppResult("libxul_like")
    for tool in ("jt", "func-ptr"):
        result.tool_runs[tool] = evaluate_tool(
            tool, binary, oracle, base_cycles, benchmark="libxul_like"
        )
    # IR lowering fails on Rust metadata, as Egalito did.
    result.tool_runs["ir-lowering"] = evaluate_tool(
        "ir-lowering", binary, oracle, base_cycles,
        benchmark="libxul_like",
    )
    # The latency-benchmark score: derived from emulated cycles (lower
    # cycles -> better score), reported as score reduction.
    for tool in ("jt", "func-ptr"):
        run = result.tool_runs[tool]
        if run.passed:
            result.notes.append(
                f"{tool}: score reduction "
                f"{run.overhead / (1 + run.overhead):.2%}"
            )
    return result


def docker_experiment():
    """Rewrite the Go workload (Section 8.2)."""
    program, binary = docker_like()
    oracle, base_cycles = baseline_run(binary)
    result = AppResult("docker_like")
    for tool in ("dir", "jt", "func-ptr", "ir-lowering"):
        result.tool_runs[tool] = evaluate_tool(
            tool, binary, oracle, base_cycles, benchmark="docker_like"
        )
    dir_run = result.tool_runs["dir"]
    jt_run = result.tool_runs["jt"]
    if dir_run.passed and jt_run.passed:
        result.notes.append(
            "dir == jt for Go binaries (no jump tables): overhead "
            f"{dir_run.overhead:.2%} vs {jt_run.overhead:.2%}"
        )
    fp_run = result.tool_runs["func-ptr"]
    if fp_run.passed and fp_run.degraded_functions:
        # Go's runtime-built function tables make pointer identification
        # imprecise; the ladder degrades the implicated functions
        # instead of refusing the binary (coverage drops below 100%).
        result.notes.append(
            f"func-ptr: {fp_run.degraded_functions} function(s) "
            f"degraded (imprecise pointer analysis), coverage "
            f"{fp_run.coverage:.0%}"
        )
    return result


# ---------------------------------------------------------------------------
# Section 8.3 — comparison with BOLT
# ---------------------------------------------------------------------------

@dataclass
class BoltComparison:
    bolt_fn_reorder_pass: int = 0
    bolt_fn_reorder_error: str = ""
    bolt_blk_reorder_pass: int = 0
    bolt_blk_reorder_corrupt: int = 0
    bolt_blk_size_mean: float = 0.0
    bolt_blk_size_max: float = 0.0
    ours_fn_reorder_pass: int = 0
    ours_blk_reorder_pass: int = 0
    total: int = 0


def bolt_comparison(arch="x86", benchmarks=None):
    """Function/block reversal: BOLT vs incremental CFG patching."""
    benchmarks = benchmarks or SPEC_BENCHMARK_NAMES
    comp = BoltComparison(total=len(benchmarks))
    bolt = BoltOptimizer()
    sizes = []
    for name in benchmarks:
        # BOLT, default build (no link relocs): function reorder fails.
        program, binary = build_workload(spec_workload(name, arch), arch)
        oracle, base_cycles = baseline_run(binary)
        try:
            bolt.reorder_functions(binary)
            comp.bolt_fn_reorder_pass += 1
        except ReproError as exc:
            comp.bolt_fn_reorder_error = str(exc)

        # BOLT block reorder (works without link relocs, may corrupt).
        try:
            reordered, report = bolt.reorder_blocks(binary)
            sizes.append(report.size_increase)
            if is_corrupted(reordered):
                comp.bolt_blk_reorder_corrupt += 1
            else:
                result = run_binary(reordered)
                if (result.exit_code, result.output) == oracle:
                    comp.bolt_blk_reorder_pass += 1
                else:
                    comp.bolt_blk_reorder_corrupt += 1
        except ReproError:
            comp.bolt_blk_reorder_corrupt += 1

        # Ours: both reorderings, all benchmarks.
        for kind in ("function", "block"):
            rewriter = IncrementalRewriter(
                mode=RewriteMode.JT,
                scorch_original=True,
                function_order="reverse" if kind == "function"
                else "address",
                block_order="reverse" if kind == "block" else "address",
            )
            try:
                rewritten, _report = rewriter.rewrite(binary)
                runtime = rewriter.runtime_library(rewritten)
                result = run_binary(rewritten, runtime_lib=runtime)
                if (result.exit_code, result.output) == oracle:
                    if kind == "function":
                        comp.ours_fn_reorder_pass += 1
                    else:
                        comp.ours_blk_reorder_pass += 1
            except ReproError:
                pass
    if sizes:
        comp.bolt_blk_size_mean = sum(sizes) / len(sizes)
        comp.bolt_blk_size_max = max(sizes)
    return comp


# ---------------------------------------------------------------------------
# Section 9 — the Diogenes case study
# ---------------------------------------------------------------------------

@dataclass
class DiogenesResult:
    total_functions: int
    instrumented_functions: int
    mainstream_cycles: int
    mainstream_traps: int
    ours_cycles: int
    ours_traps: int

    @property
    def speedup(self):
        return self.mainstream_cycles / max(self.ours_cycles, 1)


def diogenes_case_study():
    """Partial instrumentation of the stripped driver library.

    Diogenes instruments ~700 of 12644 functions of libcuda.so with
    call/return tracing; mainstream Dyninst took 30 minutes (dominated by
    trap-based trampolines), incremental CFG patching 30 seconds.  Here
    the identification test is the emulated run of the driver workload
    with a subset of functions instrumented; the time ratio is the cycle
    ratio, and the trap counts show why.
    """
    program, binary = libcuda_like()
    oracle, base_cycles = baseline_run(binary)

    from repro.analysis import build_cfg
    cfg = build_cfg(binary)
    ok_fns = [f for f in cfg.sorted_functions()
              if f.ok and not f.is_runtime_support]
    candidates = [f.name for f in ok_fns]
    # The "call-graph intersection" subset Diogenes instruments: the
    # library is stripped, so the functions on the synchronization path
    # are identified structurally (the hot driver internals are the
    # branchy ones full of tiny blocks) plus some public entry points.
    hot = [f.name for f in ok_fns
           if sum(1 for b in f.blocks.values() if b.size <= 4) >= 5]
    others = [n for n in candidates if n not in hot]
    subset = frozenset(hot + others[: max(4, len(others) // 4)])

    # Mainstream Dyninst: per-block trampolines, weak analysis, traps
    # galore (the signal-delivery bug is irrelevant here: give it an
    # unbounded budget, as the paper's 30-minute run did complete).
    mainstream = SrbiRewriter(
        instrumentation=CountingInstrumentation(function_filter=subset),
        trap_budget=1 << 30,
    )
    rewritten, report_m = mainstream.rewrite(binary)
    runtime = mainstream.runtime_library(rewritten)
    result_m = run_binary(rewritten, runtime_lib=runtime)
    if (result_m.exit_code, result_m.output) != oracle:
        raise ReproError("mainstream run diverged")

    ours = IncrementalRewriter(
        mode=RewriteMode.JT,
        instrumentation=CountingInstrumentation(function_filter=subset),
    )
    rewritten, report_o = ours.rewrite(binary)
    runtime = ours.runtime_library(rewritten)
    result_o = run_binary(rewritten, runtime_lib=runtime)
    if (result_o.exit_code, result_o.output) != oracle:
        raise ReproError("our run diverged")

    return DiogenesResult(
        total_functions=len(candidates),
        instrumented_functions=len(subset),
        mainstream_cycles=result_m.cycles,
        mainstream_traps=result_m.counters["traps"],
        ours_cycles=result_o.cycles,
        ours_traps=result_o.counters["traps"],
    )


# ---------------------------------------------------------------------------
# Figure 2 — failure-mode analysis
# ---------------------------------------------------------------------------

@dataclass
class FailureModeResult:
    """One row per injected failure kind."""

    baseline_coverage: float = None
    baseline_trampolines: int = 0
    report_coverage: float = None
    report_correct: bool = None
    overapprox_trampolines: int = 0
    overapprox_correct: bool = None
    underapprox_outcome: str = ""


def failure_modes(arch="x86", benchmark="625.x264_s"):
    """Inject each Figure-2 failure and observe its documented impact."""
    program, binary = build_workload(spec_workload(benchmark, arch), arch)
    oracle, base_cycles = baseline_run(binary)
    result = FailureModeResult()

    def run_with(plan):
        hook = (lambda cfg: inject_failures(cfg, plan)) if plan else None
        # degrade=False: this experiment exists to *observe* the raw
        # Figure-2 consequences; the ladder's jump-table audit would
        # catch the under-approximation and neutralize the injection.
        rewriter = IncrementalRewriter(mode=RewriteMode.JT,
                                       scorch_original=True,
                                       cfg_hook=hook,
                                       degrade=False)
        rewritten, report = rewriter.rewrite(binary)
        runtime = rewriter.runtime_library(rewritten)
        res = run_binary(rewritten, runtime_lib=runtime)
        correct = (res.exit_code, res.output) == oracle
        return report, correct

    # Baseline: no injection.
    report, correct = run_with(None)
    assert correct
    result.baseline_coverage = report.coverage
    result.baseline_trampolines = sum(report.trampolines.values())

    # (1) Analysis reporting failure -> lower coverage, still correct.
    victim = "switcher1"
    report, correct = run_with(FailurePlan(report={victim}))
    result.report_coverage = report.coverage
    result.report_correct = correct

    # (2) Over-approximation -> an unnecessary trampoline, still correct.
    report, correct = run_with(FailurePlan(overapproximate={victim}))
    result.overapprox_trampolines = sum(report.trampolines.values())
    result.overapprox_correct = correct

    # (3) Under-approximation -> wrong instrumentation; the strong test
    #     makes this a visible fault instead of silent corruption.
    try:
        report, correct = run_with(
            FailurePlan(underapproximate={victim})
        )
        result.underapprox_outcome = (
            "ran (output correct)" if correct else "wrong output"
        )
    except IllegalInstructionFault:
        result.underapprox_outcome = "illegal-instruction fault"
    except MachineFault as exc:
        result.underapprox_outcome = f"machine fault: {exc}"
    return result
