"""Shared evaluation machinery.

``evaluate_tool`` runs the full pipeline for one (binary, tool) pair:
rewrite with the strong test enabled (every block instrumented with empty
instrumentation, original bytes scorched), execute on the emulator,
compare output with the oracle run, and measure overhead/coverage/size —
the paper's Section 8 methodology.
"""

from dataclasses import dataclass, field

from repro.baselines import (
    DynamicTranslationRewriter,
    InstructionPatcher,
    IrLoweringRewriter,
    SrbiRewriter,
)
from repro.core import (
    EmptyInstrumentation,
    IncrementalRewriter,
    RewriteMode,
    RuntimeLibrary,
)
from repro.machine import run_binary
from repro.obs import NULL_METRICS, NULL_TRACER
from repro.util.errors import ReproError

#: Tool names understood by :func:`make_tool`.
TOOL_NAMES = ("srbi", "dir", "jt", "func-ptr", "ir-lowering",
              "dyn-translation", "insn-patching")


@dataclass
class ToolRun:
    """Outcome of one tool on one binary."""

    tool: str
    benchmark: str
    passed: bool
    #: ``"ExcType: message"`` when the run failed inside the pipeline
    error: str = None
    overhead: float = None
    coverage: float = None
    size_increase: float = None
    traps_installed: int = 0
    traps_hit: int = 0
    cycles: int = None
    #: runtime profile of the emulated execution
    instructions: int = None
    ra_translations: int = 0
    dyn_translations: int = 0
    unwound_frames: int = 0
    #: artifact-cache accounting for this run (deltas over the shared
    #: metrics registry, so a reused registry still reports per-run)
    cache_hits: int = 0
    cache_misses: int = 0
    analysis_seconds_saved: float = 0.0
    #: peak traced-memory bytes of the rewrite (None unless the caller
    #: passed a ``Tracer(memory=True)``)
    mem_peak: int = None
    #: functions the degradation ladder moved below the requested mode
    degraded_functions: int = 0
    #: the rewrite's :class:`repro.core.modes.DegradationReport`
    #: (None when the tool has no ladder)
    degradation: object = field(default=None, repr=False)
    report: object = field(default=None, repr=False)
    #: the :class:`repro.obs.Tracer` that observed this run (None when
    #: tracing was not requested)
    trace: object = field(default=None, repr=False)
    #: the :class:`repro.obs.FlightRecorder` that observed this run
    #: (None when flight recording was not requested)
    flight: object = field(default=None, repr=False)
    #: the :class:`repro.obs.EngineTelemetry` that observed this run's
    #: superblock JIT (None when engine telemetry was not requested)
    telemetry: object = field(default=None, repr=False)
    #: the rewrite's :class:`repro.obs.RewriteReceipt` (None for tools
    #: without receipt support)
    receipt: object = field(default=None, repr=False)
    #: the rewrite's :class:`repro.obs.RewriteAtlas` (None unless the
    #: caller passed an ``atlas_sink`` and the tool speaks atlases)
    atlas: object = field(default=None, repr=False)


def make_tool(name, instrumentation=None, scorch=True, **kwargs):
    """Instantiate a rewriter by tool name."""
    instrumentation = instrumentation or EmptyInstrumentation()
    if name in ("dir", "jt", "func-ptr"):
        return IncrementalRewriter(
            mode=RewriteMode.parse(name),
            instrumentation=instrumentation,
            scorch_original=scorch,
            **kwargs,
        )
    if name == "srbi":
        return SrbiRewriter(instrumentation=instrumentation,
                            scorch_original=scorch, **kwargs)
    if name == "ir-lowering":
        return IrLoweringRewriter(instrumentation=instrumentation,
                                  **kwargs)
    if name == "dyn-translation":
        return DynamicTranslationRewriter(instrumentation=instrumentation,
                                          **kwargs)
    if name == "insn-patching":
        return InstructionPatcher(instrumentation=instrumentation,
                                  **kwargs)
    raise KeyError(f"unknown tool {name!r}; known: {TOOL_NAMES}")


def runtime_for(tool, rewriter, rewritten):
    """The runtime library a tool's output needs (None when none)."""
    if hasattr(rewriter, "runtime_library"):
        return rewriter.runtime_library(rewritten)
    if tool in ("insn-patching",):
        return RuntimeLibrary.from_binary(rewritten)
    return None


def _cache_snapshot(metrics):
    """(hits, misses, seconds_saved) so far in ``metrics``; per-run
    numbers are deltas between two snapshots (registries are often
    shared across a whole evaluation)."""
    if not hasattr(metrics, "counter_values"):
        return (0, 0, 0.0)
    counters = metrics.counter_values()
    hist = metrics.as_dict().get("histograms", {})
    return (
        counters.get("cache.hits", 0),
        counters.get("cache.misses", 0),
        hist.get("cache.seconds_saved", {}).get("sum", 0.0),
    )


def _discard_receipt(receipt):
    """No-op sink: enables receipt emission without persistence."""


def evaluate_tool(tool, binary, oracle, base_cycles, benchmark="",
                  instrumentation=None, tracer=None, metrics=None,
                  flight=None, telemetry=None, cache=None, jobs=None,
                  faults=None, receipt_sink=None, atlas_sink=None,
                  **tool_kwargs):
    """Run one tool on one binary; returns a :class:`ToolRun`.

    ``oracle`` is the expected ``(exit_code, output list)``;
    ``base_cycles`` the original binary's cycle count.  Pass a
    :class:`repro.obs.Tracer` (and optionally a ``Metrics`` registry) to
    observe the whole run — the rewrite's pipeline-stage spans and the
    emulated execution land under it and the tracer is attached to the
    returned :attr:`ToolRun.trace`; failures are recorded as
    ``harness-error`` trace events with the exception type.  A
    ``Tracer(memory=True)`` additionally surfaces the rewrite's peak
    traced memory on :attr:`ToolRun.mem_peak`.  Pass a
    :class:`repro.obs.FlightRecorder` as ``flight`` to record the
    emulated execution (block ring, trampoline hits, RA translations);
    it comes back on :attr:`ToolRun.flight`.  Pass an
    :class:`repro.obs.EngineTelemetry` as ``telemetry`` to observe the
    superblock JIT (hot blocks, guard outcomes, compile time); it
    comes back on :attr:`ToolRun.telemetry`.

    ``cache`` (an :class:`repro.core.ArtifactCache`, typically shared
    across many evaluations) and ``jobs`` feed the incremental pipeline;
    the run's own hit/miss/time-saved deltas come back on the ToolRun.

    ``faults`` (a :class:`repro.analysis.FailurePlan`) is the chaos
    harness's entry point: its analysis perturbations are injected via
    the rewriter's ``cfg_hook`` (chained after any existing hook), its
    worker-crash/pool-break budgets become a
    :class:`~repro.analysis.failures.WorkerFaultInjector` on the
    rewriter, and its ``corrupt_cache`` count truncates that many
    entries of ``cache`` before the rewrite.  The run itself is judged
    exactly as without faults — the invariant under test is that the
    output binary still matches the oracle and only coverage drops.

    ``receipt_sink`` (a :class:`repro.obs.ReceiptLedger` or callable)
    persists the rewrite's provenance receipt; even without one, tools
    that speak receipts get a discard sink so the receipt is still
    assembled and attached to :attr:`ToolRun.receipt`.

    ``atlas_sink`` (a :class:`repro.obs.AtlasLedger` or callable) turns
    on per-function coverage/precision accounting; the assembled
    :class:`repro.obs.RewriteAtlas` comes back on
    :attr:`ToolRun.atlas`.  Unlike receipts there is no default discard
    sink — atlas assembly walks every function, so it runs only on
    request.
    """
    attach = tracer if tracer is not None else None
    tracer = tracer if tracer is not None else NULL_TRACER
    metrics = metrics if metrics is not None else NULL_METRICS
    rewriter = None
    try:
        rewriter = make_tool(tool, instrumentation=instrumentation,
                             **tool_kwargs)
        # Thread the sinks into the rewriter post-construction so every
        # tool (incl. baselines with fixed signatures) is observable.
        rewriter.tracer = tracer
        rewriter.metrics = metrics
        if cache is not None:
            rewriter.cache = cache
        if jobs is not None:
            rewriter.jobs = jobs
        if hasattr(rewriter, "receipt_sink"):
            # Not every baseline is an IncrementalRewriter; only wire
            # receipts into tools that emit them.
            rewriter.receipt_sink = (receipt_sink
                                     if receipt_sink is not None
                                     else _discard_receipt)
            rewriter.workload = benchmark or None
        if atlas_sink is not None and hasattr(rewriter, "atlas_sink"):
            rewriter.atlas_sink = atlas_sink
        if faults is not None:
            _apply_faults(rewriter, faults, cache)
        before = _cache_snapshot(metrics)
        rewritten, report = rewriter.rewrite(binary)
        cache_stats = [b - a for a, b in
                       zip(before, _cache_snapshot(metrics))]
        runtime = runtime_for(tool, rewriter, rewritten)
        result = run_binary(rewritten, runtime_lib=runtime,
                            tracer=tracer, metrics=metrics,
                            flight=flight, telemetry=telemetry)
    except ReproError as exc:
        error = f"{type(exc).__name__}: {exc}"
        tracer.event("harness-error", tool=tool, benchmark=benchmark,
                     error=error)
        metrics.inc("harness.errors")
        return ToolRun(tool=tool, benchmark=benchmark, passed=False,
                       error=error, trace=attach, flight=flight,
                       telemetry=telemetry,
                       receipt=getattr(rewriter, "last_receipt", None),
                       atlas=getattr(rewriter, "last_atlas", None))
    mem_peak = None
    if attach is not None:
        rewrite_span = attach.find("rewrite")
        if rewrite_span is not None:
            mem_peak = rewrite_span.mem_peak
    if (result.exit_code, result.output) != oracle:
        tracer.event("harness-error", tool=tool, benchmark=benchmark,
                     error="wrong output")
        metrics.inc("harness.wrong_output")
        return ToolRun(tool=tool, benchmark=benchmark, passed=False,
                       error="wrong output", report=report, trace=attach,
                       flight=flight, telemetry=telemetry,
                       cache_hits=cache_stats[0],
                       cache_misses=cache_stats[1],
                       analysis_seconds_saved=cache_stats[2],
                       mem_peak=mem_peak,
                       receipt=getattr(rewriter, "last_receipt", None),
                       atlas=getattr(rewriter, "last_atlas", None))
    return ToolRun(
        tool=tool,
        benchmark=benchmark,
        passed=True,
        overhead=result.cycles / base_cycles - 1.0,
        coverage=report.coverage,
        size_increase=report.size_increase,
        traps_installed=report.traps,
        traps_hit=result.counters.get("traps", 0),
        cycles=result.cycles,
        instructions=result.icount,
        ra_translations=result.counters.get("ra_translations", 0),
        dyn_translations=result.counters.get("dyn_translations", 0),
        unwound_frames=result.counters.get("unwound_frames", 0),
        cache_hits=cache_stats[0],
        cache_misses=cache_stats[1],
        analysis_seconds_saved=cache_stats[2],
        mem_peak=mem_peak,
        degraded_functions=len(getattr(report, "degradation", ()) or ()),
        degradation=getattr(report, "degradation", None),
        report=report,
        trace=attach,
        flight=flight,
        telemetry=telemetry,
        receipt=getattr(rewriter, "last_receipt", None),
        atlas=getattr(rewriter, "last_atlas", None),
    )


def _apply_faults(rewriter, faults, cache):
    """Wire a FailurePlan's chaos into one rewriter instance."""
    from repro.analysis.failures import (
        corrupt_cache_entries,
        inject_failures,
    )

    if faults.injects_analysis_faults:
        prev_hook = getattr(rewriter, "cfg_hook", None)

        def hook(cfg, _prev=prev_hook):
            if _prev is not None:
                cfg = _prev(cfg) or cfg
            return inject_failures(cfg, faults)

        rewriter.cfg_hook = hook
    injector = faults.injector()
    if injector is not None:
        rewriter.worker_faults = injector
    if faults.corrupt_cache and cache is not None:
        corrupt_cache_entries(cache, faults.corrupt_cache)


def baseline_run(binary):
    """Oracle run of the original binary: ((exit, output), cycles)."""
    result = run_binary(binary)
    return (result.exit_code, result.output), result.cycles


def summarize(runs):
    """Aggregate ToolRuns the way Table 3 reports them.

    Tolerates ``None`` and empty/all-failed run lists: every aggregate
    over no values comes back ``None`` (totals come back 0) instead of
    raising.
    """
    runs = list(runs) if runs else []
    passed = [r for r in runs if r.passed]
    def agg(values, fn, default=None):
        values = [v for v in values if v is not None]
        return fn(values) if values else default
    return {
        "pass": len(passed),
        "total": len(runs),
        "overhead_max": agg([r.overhead for r in passed], max),
        "overhead_mean": agg(
            [r.overhead for r in passed],
            lambda v: sum(v) / len(v),
        ),
        "coverage_min": agg([r.coverage for r in passed], min),
        "coverage_mean": agg(
            [r.coverage for r in passed],
            lambda v: sum(v) / len(v),
        ),
        "size_max": agg([r.size_increase for r in passed], max),
        "size_mean": agg(
            [r.size_increase for r in passed],
            lambda v: sum(v) / len(v),
        ),
        # Runtime-profile totals across the passing runs.
        "cycles_total": agg([r.cycles for r in passed], sum, 0),
        "instructions_total": agg(
            [r.instructions for r in passed], sum, 0),
        "traps_hit_total": agg([r.traps_hit for r in passed], sum, 0),
        "ra_translations_total": agg(
            [r.ra_translations for r in passed], sum, 0),
    }
