"""Differential execution: original vs rewritten, in lockstep.

The strongest check a rewrite can face is not a checksum but a replay:
run the original and the rewritten image side by side, force them to
agree at every point where they are supposed to agree, and stop at the
first place they do not.  The ``.reloc_map`` the rewriter embeds (one
``original block start -> relocated address`` pair per relocated block)
provides exactly those agreement points: whenever the original program
enters a relocated block, the rewritten program must enter that block's
relocated copy — possibly a few instructions later, after bouncing
through a trampoline and an instrumentation snippet, which is why the
two sides are advanced *to the next sync point* rather than instruction
by instruction.

:func:`differential_run` returns a :class:`ForensicsBundle`: whether the
images diverged, the first :class:`Divergence` (diverging block pair,
decoded instructions, output/exit/memory mismatch), the last-N block
rings of both sides, and the trampoline chain the rewritten side took on
its way to the divergence.  :func:`render_forensics` formats the bundle
for humans; ``repro diff-run`` is the CLI entry.
"""

from dataclasses import dataclass, field
from typing import Optional

from repro.core.runtime_lib import RuntimeLibrary, unpack_addr_map
from repro.machine.machine import machine_for
from repro.obs.flight import FlightRecorder
from repro.util.errors import MachineFault, ReproError, UnwindError

#: Per-side dynamic-instruction budget for one differential run.
DEFAULT_DIFF_STEPS = 5_000_000


@dataclass
class Divergence:
    """The first observed disagreement between the two executions."""

    #: control-flow | output | exit-code | memory | fault | stall
    kind: str
    detail: str
    #: Index of the sync point at which the disagreement surfaced.
    sync_index: int
    #: What the original side did (block addr, loaded pc, instruction).
    expected: Optional[dict] = None
    #: What the rewritten side did instead.
    actual: Optional[dict] = None

    def to_dict(self):
        return {"kind": self.kind, "detail": self.detail,
                "sync_index": self.sync_index,
                "expected": self.expected, "actual": self.actual}


@dataclass
class ForensicsBundle:
    """Everything :func:`differential_run` learned."""

    diverged: bool
    divergence: Optional[Divergence]
    #: Sync points both sides agreed on before the verdict.
    syncs: int
    #: Per-side summaries: exit_code, output, cycles, icount, last_blocks.
    original: dict = field(default_factory=dict)
    rewritten: dict = field(default_factory=dict)
    #: Trampoline hops the rewritten side took, oldest first:
    #: ``[(site, kind, function), ...]`` in loaded addresses.
    tramp_chain: list = field(default_factory=list)

    def to_dict(self):
        return {
            "diverged": self.diverged,
            "divergence": self.divergence.to_dict()
            if self.divergence else None,
            "syncs": self.syncs,
            "original": self.original,
            "rewritten": self.rewritten,
            "tramp_chain": [list(t) for t in self.tramp_chain],
        }


def _describe(machine, pc):
    """Best-effort decode of the instruction at ``pc``."""
    try:
        insn = machine.spec.decode(machine.memory.data, pc, addr=pc)
    except Exception:
        return "?"
    ops = ", ".join(str(op) for op in insn.operands)
    return f"{insn.mnemonic} {ops}".strip()


def _side_summary(machine, recorder, last=16):
    cpu = machine.cpu
    return {
        "exit_code": cpu.exit_code,
        "output": list(machine.kernel.output),
        "cycles": cpu.cycles,
        "icount": cpu.icount,
        "pc": cpu.pc,
        "last_blocks": [
            {"pc": pc, "cycles": cycles,
             "region": recorder.region_of(pc)}
            for pc, cycles in recorder.last_blocks(last)
        ],
    }


class _Side:
    """One machine being single-stepped toward its next sync point."""

    def __init__(self, binary, runtime_lib, bias, step_budget, ring,
                 costs):
        # Lockstep forensics single-step via ``cpu.step()``, which
        # always runs the per-step tier; pin the engine so nothing
        # about this machine ever dispatches fused superblocks.
        self.machine = machine_for(binary, costs=costs, engine="step")
        self.image = self.machine.load(binary, bias)
        if runtime_lib is not None:
            self.machine.install_runtime(runtime_lib, self.image)
        self.machine.prepare_run(self.image)
        self.recorder = FlightRecorder(ring_size=ring)
        self.recorder.observe_image(self.image)
        self.budget = step_budget
        #: loaded pc -> original-space sync address
        self.sync = {}
        #: loaded trampoline-site addr -> (kind, function); rew side only
        self.tramp_sites = {}
        self.chain = []

    def advance(self):
        """Run to the next sync point.  Returns one of
        ``("sync", orig_addr)``, ``("exit", None)``,
        ``("fault", exc)``, ``("stall", None)``."""
        cpu = self.machine.cpu
        sync = self.sync
        tramps = self.tramp_sites
        recorder = self.recorder
        while cpu.running:
            if self.budget <= 0:
                return ("stall", None)
            self.budget -= 1
            if tramps and cpu.pc in tramps:
                site = cpu.pc
                self.chain.append((site,) + tramps[site])
                recorder.tramp_hit(site)
            try:
                cpu.step()
            except (MachineFault, UnwindError) as exc:
                return ("fault", exc)
            pc = cpu.pc
            orig = sync.get(pc)
            if orig is not None:
                recorder.record_block(pc, cpu.cycles)
                return ("sync", orig)
        return ("exit", None)


def differential_run(original, rewritten, runtime_lib=None, ring=64,
                     max_steps=DEFAULT_DIFF_STEPS, bias=None, costs=None):
    """Execute ``original`` and ``rewritten`` in lockstep; returns a
    :class:`ForensicsBundle` describing the first divergence (if any).

    ``rewritten`` must carry the ``.reloc_map`` section the rewriters
    emit; ``runtime_lib`` defaults to the one packed into the rewritten
    binary's own sections.
    """
    reloc_section = rewritten.get_section(".reloc_map")
    if reloc_section is None:
        raise ReproError(
            f"{rewritten.name} has no .reloc_map section; rewrite it "
            "with this tree's rewriters to enable differential runs"
        )
    reloc_map = unpack_addr_map(bytes(reloc_section.data))
    if runtime_lib is None and "rewrite" in rewritten.metadata:
        runtime_lib = RuntimeLibrary.from_binary(rewritten)

    orig_side = _Side(original, None, bias, max_steps, ring, costs)
    rew_side = _Side(rewritten, runtime_lib, bias, max_steps, ring,
                     costs)

    bias_o = orig_side.image.bias
    bias_r = rew_side.image.bias
    orig_side.sync = {start + bias_o: start for start in reloc_map}
    rew_side.sync = {relocated + bias_r: start
                     for start, relocated in reloc_map.items()}
    info = rewritten.metadata.get("rewrite", {})
    rew_side.tramp_sites = {
        site + bias_r: (kind, function)
        for site, kind, function in info.get("trampoline_sites", ())
    }

    # When the rewritten entry still points at the original entry (the
    # incremental and instruction-patching rewriters keep it there, in
    # front of a trampoline), the rewritten side crosses one extra sync
    # point — the relocated entry block — that the original side never
    # reports, because sync membership is only checked *after* a step.
    # Consume it before the lockstep loop.
    syncs = 0
    if (rewritten.entry == original.entry
            and original.entry in reloc_map):
        status, value = rew_side.advance()
        if status != "sync" or value != original.entry:
            return _verdict(
                orig_side, rew_side, syncs,
                Divergence(
                    kind="control-flow",
                    detail="rewritten prologue never reached the "
                           "relocated entry block",
                    sync_index=0,
                    expected={"orig": original.entry},
                    actual=_arm_info(rew_side, status, value),
                ),
            )

    checked_output = 0
    while True:
        so, vo = orig_side.advance()
        sr, vr = rew_side.advance()

        if so == "sync" and sr == "sync":
            if vo != vr:
                return _verdict(
                    orig_side, rew_side, syncs,
                    Divergence(
                        kind="control-flow",
                        detail="the two executions entered different "
                               "blocks",
                        sync_index=syncs,
                        expected=_block_info(orig_side, vo, bias_o),
                        actual=_block_info(rew_side, vr, bias_o,
                                           reloc_map, bias_r),
                    ),
                )
            syncs += 1
        elif so == "exit" and sr == "exit":
            pass
        else:
            return _verdict(
                orig_side, rew_side, syncs,
                Divergence(
                    kind="fault" if "fault" in (so, sr)
                    else "stall" if "stall" in (so, sr)
                    else "control-flow",
                    detail=f"original {_arm_text(so, vo)}; "
                           f"rewritten {_arm_text(sr, vr)}",
                    sync_index=syncs,
                    expected=_arm_info(orig_side, so, vo),
                    actual=_arm_info(rew_side, sr, vr),
                ),
            )

        out_o = orig_side.machine.kernel.output
        out_r = rew_side.machine.kernel.output
        common = min(len(out_o), len(out_r))
        if out_o[checked_output:common] != out_r[checked_output:common]:
            idx = next(i for i in range(checked_output, common)
                       if out_o[i] != out_r[i])
            return _verdict(
                orig_side, rew_side, syncs,
                Divergence(
                    kind="output",
                    detail=f"output item {idx} differs",
                    sync_index=syncs,
                    expected={"value": out_o[idx]},
                    actual={"value": out_r[idx]},
                ),
            )
        checked_output = common

        if so == "exit":
            break

    divergence = _compare_final(orig_side, rew_side, syncs, original,
                                bias_o, bias_r)
    return _verdict(orig_side, rew_side, syncs, divergence)


def _compare_final(orig_side, rew_side, syncs, original, bias_o, bias_r):
    """Both sides exited: compare exit codes, full output, and the
    writable memory of the original's data sections."""
    cpu_o = orig_side.machine.cpu
    cpu_r = rew_side.machine.cpu
    if cpu_o.exit_code != cpu_r.exit_code:
        return Divergence(
            kind="exit-code",
            detail="exit codes differ",
            sync_index=syncs,
            expected={"exit_code": cpu_o.exit_code},
            actual={"exit_code": cpu_r.exit_code},
        )
    out_o = orig_side.machine.kernel.output
    out_r = rew_side.machine.kernel.output
    if out_o != out_r:
        return Divergence(
            kind="output",
            detail=f"output lengths differ "
                   f"({len(out_o)} vs {len(out_r)})",
            sync_index=syncs,
            expected={"length": len(out_o)},
            actual={"length": len(out_r)},
        )
    mem_o = orig_side.machine.memory.data
    mem_r = rew_side.machine.memory.data
    for section in original.alloc_sections():
        if not section.is_writable:
            continue
        size = section.size
        lo_o = section.addr + bias_o
        lo_r = section.addr + bias_r
        a = bytes(mem_o[lo_o:lo_o + size])
        b = bytes(mem_r[lo_r:lo_r + size])
        if a != b:
            off = next(i for i in range(size) if a[i] != b[i])
            return Divergence(
                kind="memory",
                detail=f"writable section {section.name} differs at "
                       f"{section.addr + off:#x}",
                sync_index=syncs,
                expected={"addr": section.addr + off, "byte": a[off]},
                actual={"addr": section.addr + off, "byte": b[off]},
            )
    return None


def _block_info(side, orig_addr, bias_o, reloc_map=None, bias_r=None):
    """Describe one side's sync block (orig-space addr + loaded pc +
    decoded instruction)."""
    pc = side.machine.cpu.pc
    return {"orig": orig_addr, "loaded": pc,
            "insn": _describe(side.machine, pc)}


def _arm_info(side, status, value):
    cpu = side.machine.cpu
    if status == "sync":
        return {"status": status, "orig": value, "loaded": cpu.pc,
                "insn": _describe(side.machine, cpu.pc)}
    if status == "fault":
        return {"status": status, "error": str(value), "loaded": cpu.pc}
    if status == "exit":
        return {"status": status, "exit_code": cpu.exit_code}
    return {"status": status, "loaded": cpu.pc}


def _arm_text(status, value):
    if status == "sync":
        return f"reached block {value:#x}"
    if status == "fault":
        return f"faulted ({value})"
    if status == "exit":
        return "exited"
    return "ran out of steps"


def _verdict(orig_side, rew_side, syncs, divergence):
    return ForensicsBundle(
        diverged=divergence is not None,
        divergence=divergence,
        syncs=syncs,
        original=_side_summary(orig_side.machine, orig_side.recorder),
        rewritten=_side_summary(rew_side.machine, rew_side.recorder),
        tramp_chain=list(rew_side.chain),
    )


def render_forensics(bundle, last_blocks=8, last_tramps=8):
    """Human-readable report for one :class:`ForensicsBundle`."""
    lines = ["differential run", "-" * 64]
    if not bundle.diverged:
        lines.append(
            f"verdict           : EQUIVALENT over {bundle.syncs} sync "
            "points"
        )
    else:
        d = bundle.divergence
        lines.append(f"verdict           : DIVERGED ({d.kind}) after "
                     f"{bundle.syncs} agreed sync points")
        lines.append(f"detail            : {d.detail}")
        for label, info in (("original", d.expected),
                            ("rewritten", d.actual)):
            if not info:
                continue
            parts = []
            for key in ("status", "orig", "loaded", "insn", "value",
                        "exit_code", "error", "addr", "byte",
                        "length"):
                if key in info and info[key] is not None:
                    val = info[key]
                    if key in ("orig", "loaded", "addr") \
                            and isinstance(val, int):
                        val = f"{val:#x}"
                    parts.append(f"{key}={val}")
            lines.append(f"  {label:<9}       : " + "  ".join(parts))
    for label, side in (("original", bundle.original),
                        ("rewritten", bundle.rewritten)):
        lines.append(
            f"{label:<9} state   : exit={side['exit_code']} "
            f"outputs={len(side['output'])} cycles={side['cycles']} "
            f"icount={side['icount']} pc={side['pc']:#x}"
        )
    for label, side in (("original", bundle.original),
                        ("rewritten", bundle.rewritten)):
        blocks = side["last_blocks"][-last_blocks:]
        if blocks:
            lines.append(f"last {len(blocks)} blocks ({label}):")
            for entry in blocks:
                lines.append(
                    f"  {entry['pc']:#10x}  cyc={entry['cycles']:<10} "
                    f"{entry['region']}"
                )
    chain = bundle.tramp_chain[-last_tramps:]
    if chain:
        lines.append(f"trampoline chain (last {len(chain)}):")
        for site, kind, function in chain:
            lines.append(f"  {site:#10x}  {kind:<12} {function}")
    return "\n".join(lines)
