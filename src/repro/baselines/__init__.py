"""Baseline rewriters implementing the approaches the paper compares
against (Table 1): SRBI, IR lowering (Egalito/RetroWrite-like), dynamic
translation (Multiverse-like), instruction patching (E9Patch-like), and
the BOLT-like optimizer."""

from repro.baselines.bolt import BoltOptimizer, is_corrupted
from repro.baselines.dynamic_translation import DynamicTranslationRewriter
from repro.baselines.instruction_patching import InstructionPatcher
from repro.baselines.ir_lowering import IrLoweringRewriter
from repro.baselines.srbi import SrbiRewriter, SrbiRuntimeLibrary

__all__ = [
    "SrbiRewriter",
    "SrbiRuntimeLibrary",
    "IrLoweringRewriter",
    "DynamicTranslationRewriter",
    "InstructionPatcher",
    "BoltOptimizer",
    "is_corrupted",
]
