"""The IR-lowering baseline (Egalito/RetroWrite-like; paper Sections 1-2).

Lifts the *whole* binary and regenerates a new one: near-zero runtime
overhead, small size change, no trampolines and no runtime library — but
only when complete analysis succeeds.  The documented limitations are
enforced exactly as the paper reports them:

* requires position-independent input (run-time relocations); refuses
  position-dependent executables;
* all-or-nothing: a single analysis-failed function fails the rewrite
  (no partial instrumentation);
* requires precise function-pointer identification;
* no C++ exception support (failed 620.omnetpp/623.xalancbmk);
* no Rust metadata (failed on libxul.so), no Go runtime metadata /
  stack unwinding (cannot rewrite Docker), no symbol versioning
  (failed on libcuda.so).

The regenerated binary packs functions more tightly (alignment 4 instead
of 16) — the paper observed slight *speedups* from such layout
optimizations, alongside a 6.28% worst case.
"""

from repro.analysis.construction import build_cfg
from repro.analysis.funcptr import analyze_function_pointers
from repro.binfmt.sections import Section
from repro.core.instrumentation import EmptyInstrumentation
from repro.core.layout import prepare_output
from repro.core.modes import RewriteMode
from repro.core.relocate import Relocator
from repro.core.rewriter import RewriteReport
from repro.isa import get_arch
from repro.util.errors import RewriteError

#: Feature flags whose metadata IR lowering cannot re-generate.
UNSUPPORTED_FEATURES = ("rust_metadata", "go_vtab", "go_runtime",
                        "symbol_versioning")


class IrLoweringRewriter:
    """Whole-binary lift-and-regenerate."""

    def __init__(self, instrumentation=None, cfg_hook=None):
        self.instrumentation = instrumentation or EmptyInstrumentation()
        self.cfg_hook = cfg_hook

    def rewrite(self, binary):
        """Returns (rewritten Binary, RewriteReport); no runtime library
        is needed (there are no trampolines and no RA translation)."""
        spec = get_arch(binary.arch_name)
        self._pre_checks(binary)
        cfg = build_cfg(binary)
        if self.cfg_hook is not None:
            cfg = self.cfg_hook(cfg) or cfg

        failed = cfg.failed_functions()
        if failed:
            raise RewriteError(
                f"IR lowering is all-or-nothing: analysis failed for "
                f"{failed[0].name} ({failed[0].failed})"
            )
        funcptrs = analyze_function_pointers(binary, cfg, spec)
        if not funcptrs.precise:
            raise RewriteError(
                "IR lowering requires complete function-pointer "
                "identification: " + "; ".join(funcptrs.reasons[:2])
            )

        functions = [f for f in cfg.sorted_functions()
                     if not f.is_runtime_support]
        extra = self.instrumentation.prepare(binary, cfg)
        out, _dead, extra_addrs = prepare_output(binary, extra)
        if hasattr(self.instrumentation, "section_addr") \
                and ".icounters" in extra_addrs:
            self.instrumentation.section_addr = extra_addrs[".icounters"]

        relocator = Relocator(
            binary, spec, cfg, RewriteMode.FUNC_PTR,
            self.instrumentation,
            section_labels=extra_addrs,
            funcptr_code_defs=funcptrs.code_defs,
            function_alignment=4,   # packed layout (binary optimization)
        )
        reloc = relocator.relocate(functions)

        # Regenerate: the new code *replaces* the original text.
        old_text = out.section(".text")
        new_base = old_text.addr
        reloc.stream.assign_addresses(spec, new_base)
        new_bytes = reloc.stream.render(spec, new_base)
        if len(new_bytes) <= old_text.size:
            old_text.data[:] = new_bytes.ljust(old_text.size, b"\0")
        else:
            out.remove_section(".text")
            out.add_section(Section(".text", out.next_free_addr(16),
                                    new_bytes, ("ALLOC", "EXEC"), 16))
            reloc.stream.assign_addresses(
                spec, out.section(".text").addr
            )
            out.section(".text").data[:] = reloc.stream.render(
                spec, out.section(".text").addr
            )

        # Redirect every pointer definition into the regenerated code.
        patched = {}
        for data_def in funcptrs.data_defs:
            label = reloc.block_labels.get(data_def.target)
            if label is None:
                continue
            value = label.resolved() + data_def.delta
            out.write_int(data_def.slot, value, 8)
            patched[data_def.slot] = value
        out.relocations = [
            type(r)(r.where, r.kind, patched.get(r.where, r.addend),
                    r.size)
            for r in out.relocations
        ]
        out.entry = reloc.block_labels[binary.entry].resolved()
        out.metadata["rewrite"] = {"mode": "ir-lowering"}

        report = RewriteReport(
            mode="ir-lowering",
            arch=spec.name,
            total_functions=len(functions),
            relocated_functions=len(functions),
            original_loaded=binary.loaded_size(),
            rewritten_loaded=out.loaded_size(),
            redirected_slots=len(patched),
            clones=len(reloc.clones),
            funcptr_precise=True,
        )
        return out, report

    def _pre_checks(self, binary):
        if not binary.is_pic:
            raise RewriteError(
                "IR lowering requires run-time relocations (PIE/shared "
                "object); position-dependent code is unsupported"
            )
        if binary.landing_pads:
            raise RewriteError(
                "IR lowering does not support C++ exceptions"
            )
        for feature in UNSUPPORTED_FEATURES:
            if binary.feature(feature):
                raise RewriteError(
                    f"IR lowering cannot regenerate binaries with "
                    f"{feature}"
                )
        for sym in binary.function_symbols():
            if sym.version is not None:
                raise RewriteError(
                    "IR lowering cannot rewrite symbol versioning "
                    "information"
                )
