"""The BOLT-like binary optimizer (paper Sections 2 and 8.3).

BOLT is a post-link optimizer, not a general rewriting tool; the paper
compares against it on two code-reordering tasks:

* **function reordering** — requires *link-time* relocations (the binary
  must have been linked with ``-Wl,-q``); without them BOLT prints
  ``BOLT-ERROR: function reordering only works when relocations are
  enabled`` — even for PIE, whose run-time relocations do not help;
* **basic-block reordering** — works without link-time relocations, but
  the paper found it corrupted 10 of 19 binaries ("bad .interp data,
  causing them not to be able to be loaded").

The corruption is modeled deterministically: when the reordered text no
longer fits the original ``.text`` footprint, this BOLT model extends the
segment downward over the ``.note`` (interp) region while rewriting the
program header, clobbering it.  :func:`is_corrupted` detects the damage
the way a loader would.
"""

from repro.analysis.construction import build_cfg
from repro.analysis.funcptr import analyze_function_pointers
from repro.binfmt.sections import Section
from repro.core.instrumentation import EmptyInstrumentation
from repro.core.modes import RewriteMode
from repro.core.relocate import Relocator
from repro.core.rewriter import RewriteReport
from repro.isa import get_arch
from repro.util.errors import RewriteError

_NOTE_MAGIC = b"SYNTH-INTERP"

#: Modeled program-header slack: block-reordered text that grows beyond
#: this fraction of the original segment triggers the header-writer
#: defect.  Tuned so the corruption incidence matches the paper's 10/19.
BOLT_SEGMENT_SLACK = 0.075


def is_corrupted(binary):
    """Would the loader reject this binary? (bad .interp check)"""
    note = binary.get_section(".note")
    if note is None:
        return True
    return not bytes(note.data).startswith(_NOTE_MAGIC)


class BoltOptimizer:
    """Code reordering with BOLT's documented requirements and defects."""

    def __init__(self):
        self.instrumentation = EmptyInstrumentation()

    # -- public ----------------------------------------------------------

    def reorder_functions(self, binary, order="reverse"):
        """Reverse function order, keeping block order within functions."""
        if binary.link_relocs is None:
            raise RewriteError(
                "BOLT-ERROR: function reordering only works when "
                "relocations are enabled"
            )
        return self._reorder(binary, function_order=order,
                             block_order="address")

    def reorder_blocks(self, binary, order="reverse"):
        """Reverse block order within every function (function order
        kept).  May emit a corrupted binary (check :func:`is_corrupted`),
        reproducing the paper's 10-of-19 failures."""
        return self._reorder(binary, function_order="address",
                             block_order=order)

    # -- internals -----------------------------------------------------------

    def _reorder(self, binary, function_order, block_order):
        spec = get_arch(binary.arch_name)
        cfg = build_cfg(binary)
        failed = cfg.failed_functions()
        if failed:
            raise RewriteError(
                f"BOLT requires complete disassembly; failed on "
                f"{failed[0].name}"
            )
        funcptrs = analyze_function_pointers(binary, cfg, spec)
        if not funcptrs.precise:
            raise RewriteError("BOLT cannot update opaque code pointers")

        functions = [f for f in cfg.sorted_functions()
                     if not f.is_runtime_support]
        out = binary.clone()
        relocator = Relocator(
            binary, spec, cfg, RewriteMode.FUNC_PTR,
            self.instrumentation,
            funcptr_code_defs=funcptrs.code_defs,
            function_alignment=4,   # BOLT packs code tightly
        )
        emit_order = list(functions)
        if function_order == "reverse":
            emit_order.reverse()
        reloc = relocator.relocate(emit_order, block_order=block_order)

        old_text = out.section(".text")
        old_text_size = old_text.size
        corrupted = False
        base = out.next_free_addr(16)
        reloc.stream.assign_addresses(spec, base)
        new_bytes = reloc.stream.render(spec, base)
        out.add_section(Section(".text.bolt", base, new_bytes,
                                ("ALLOC", "EXEC"), 16))
        # BOLT discards the original text; only unrewritten runtime-
        # support code (unwinding helpers living at fixed addresses)
        # survives, in a small pinned section.
        keep = [f for f in cfg.sorted_functions() if f.is_runtime_support]
        out.remove_section(".text")
        for fcfg in keep:
            end = fcfg.range_end or fcfg.high
            out.add_section(Section(
                f".text.keep.{fcfg.entry:x}", fcfg.entry,
                binary.read(fcfg.entry, end - fcfg.entry),
                ("ALLOC", "EXEC"), 4,
            ))
        if binary.link_relocs is None:
            # Without link-time relocations BOLT rewrites the program
            # header in place to describe the grown text segment; the
            # header writer is buggy when the growth exceeds the
            # segment's slack — this clobbers the .interp region ("bad
            # .interp data", Section 8.3's 10-of-19 corrupted binaries).
            growth = len(new_bytes) / max(old_text_size, 1) - 1.0
            if growth > BOLT_SEGMENT_SLACK:
                note = out.get_section(".note")
                if note is not None:
                    note.data[:] = b"\xde\xad" * (note.size // 2)
                corrupted = True

        self._update_dwarf(out, cfg, reloc, functions)

        patched = {}
        for data_def in funcptrs.data_defs:
            label = reloc.block_labels.get(data_def.target)
            if label is None:
                continue
            value = label.resolved() + data_def.delta
            out.write_int(data_def.slot, value, 8)
            patched[data_def.slot] = value
        out.relocations = [
            type(r)(r.where, r.kind, patched.get(r.where, r.addend),
                    r.size)
            for r in out.relocations
        ]
        out.entry = reloc.block_labels[binary.entry].resolved()
        out.metadata["rewrite"] = {
            "mode": f"bolt-{function_order}-{block_order}",
            "corrupted": corrupted,
        }

        report = RewriteReport(
            mode="bolt",
            clones=len(reloc.clones),
            arch=spec.name,
            total_functions=len(functions),
            relocated_functions=len(functions),
            original_loaded=binary.loaded_size(),
            rewritten_loaded=out.loaded_size(),
        )
        return out, report

    def _update_dwarf(self, out, cfg, reloc, functions):
        """BOLT's distinguishing strategy (Table 1): rewrite the unwind
        metadata to describe the reordered code.

        Recipes are remapped function-by-function; landing-pad call-site
        ranges are remapped to the new span of the blocks they covered,
        and handlers to their relocated addresses.  This is exactly the
        DWARF surgery whose engineering fragility the paper contrasts
        with runtime RA translation.
        """
        from repro.binfmt.unwind import LandingPad, UnwindRecipe, UnwindTable

        fn_by_entry = {f.entry: f for f in functions}
        new_recipes = []
        for recipe in out.unwind:
            fcfg = None
            for f in functions:
                if f.entry <= recipe.start < (f.range_end or f.high):
                    fcfg = f
                    break
            if fcfg is None or fcfg.entry not in reloc.block_labels:
                new_recipes.append(recipe)
                continue
            new_start = reloc.block_labels[fcfg.entry].resolved()
            new_end = reloc.fn_end_labels[fcfg.entry].resolved()
            new_recipes.append(UnwindRecipe(
                new_start, new_end, recipe.frame_size, recipe.ra_rule,
                recipe.ra_offset, recipe.saved_regs,
            ))
        out.unwind = UnwindTable(new_recipes)

        new_pads = []
        for pad in out.landing_pads:
            spans = self._new_spans(pad, cfg, reloc)
            handler_label = reloc.block_labels.get(pad.handler)
            if not spans or handler_label is None:
                new_pads.append(pad)
                continue
            handler = handler_label.resolved()
            for lo, hi in spans:
                new_pads.append(LandingPad(lo, hi, handler))
        out.landing_pads = new_pads
        eh = out.get_section(".eh_frame")
        if eh is not None:
            eh.data[:] = out.unwind.pack()

    def _new_spans(self, pad, cfg, reloc):
        """New-address spans of the blocks a call-site range covered."""
        fcfg, _ = cfg.block_containing(pad.call_site_start)
        if fcfg is None:
            return []
        order = reloc.fn_emit_order.get(fcfg.entry, [])
        spans = []
        for i, start in enumerate(order):
            block = fcfg.blocks[start]
            if block.end <= pad.call_site_start \
                    or block.start >= pad.call_site_end:
                continue
            lo = reloc.block_labels[start].resolved()
            if i + 1 < len(order):
                hi = reloc.block_labels[order[i + 1]].resolved()
            else:
                hi = reloc.fn_end_labels[fcfg.entry].resolved()
            spans.append((lo, hi))
        return spans
