"""The dynamic-translation baseline (Multiverse-like; paper Section 2.2).

Direct control flow is rewritten; *every* indirect transfer — indirect
jumps, indirect calls, and returns (call emulation pushes original return
addresses) — goes through a runtime translation function that maps the
original target to its rewritten counterpart.  No trampolines and no
binary analysis of indirect flow are needed, at the price of one
translation call per transfer: the "significantly increases runtime
overhead" row of Table 1.

Where Multiverse uses superset disassembly for reliability, this model
reuses the recursive-traversal CFG (the translation map needs original
block addresses either way); the cost structure — a translation per
indirect transfer and per return — is what the comparison depends on.
"""

from repro.core.modes import RewriteMode
from repro.core.placement import PlacementResult
from repro.core.rewriter import IncrementalRewriter
from repro.core.runtime_lib import pack_addr_map
from repro.binfmt.sections import Section
from repro.util.errors import RewriteError


class DynamicTranslationRewriter(IncrementalRewriter):
    """Multiverse-style rewriting."""

    def __init__(self, instrumentation=None, scorch_original=False):
        super().__init__(
            mode=RewriteMode.DIR,
            instrumentation=instrumentation,
            scorch_original=scorch_original,
            call_emulation=True,
        )
        self._dyn_map = {}

    def _pre_checks(self, binary, cfg):
        if binary.landing_pads:
            raise RewriteError(
                "this dynamic-translation model does not re-enter "
                "catch handlers (no trampolines exist to intercept the "
                "unwinder's transfer)"
            )

    def _relocator_kwargs(self):
        return {"dynamic_translation": True}

    def _compute_placement(self, cfg, cfl):
        """No trampolines at all: unmodified control flow is translated
        at run time instead of patched (Table 1)."""
        return PlacementResult()

    def _post_layout(self, out, reloc, installer):
        # The translation map: every original block start (including call
        # fall-throughs, which returns re-enter) -> rewritten address.
        self._dyn_map = {
            start: label.resolved()
            for start, label in reloc.block_labels.items()
            if label.addr is not None
        }
        addr = out.next_free_addr(16)
        out.add_section(Section(".dyn_map", addr,
                                pack_addr_map(self._dyn_map),
                                ("ALLOC",), 8))
        # Execution must start in rewritten code (nothing patches the
        # original entry).
        out.entry = reloc.block_labels[out.entry].resolved()
