"""The instruction-patching baseline (E9Patch-like; paper Sections 1-2).

No control flow is rewritten and no binary analysis is used beyond plain
disassembly for instruction boundaries.  Each instrumented instruction is
replaced in place by a branch to a per-instruction trampoline that runs
the instrumentation, re-executes the displaced instruction, and branches
back to the next instruction.  Reliability is maximal; overhead is two
extra taken branches (plus i-cache pollution) per instrumented
instruction — "over 100% runtime overhead when instrumenting basic blocks
with empty instrumentation".

High-level instrumentation semantics are NOT guaranteed: this baseline
patches *addresses*, not CFG blocks, which is the paper's function-entry-
in-a-loop example of why CFG-less patching is semantically weaker.  Stack
unwinding is likewise unsupported (Table 1: "NA") — return addresses of
displaced calls point into the patch area.

Faithfulness notes: the x86 patcher uses the 5-byte branch when the
instruction is long enough, a 2-byte short branch into nearby padding
otherwise, and a trap as last resort (E9Patch's prefix/punning tricks
collapse to the same three-way outcome at our modeling granularity).  On
the fixed-length architectures every instruction fits a branch but range
may force a trap — the paper's observation that E9Patch's technique
"cannot be extended to ppc64le or aarch64".
"""

from repro.analysis.construction import build_cfg
from repro.binfmt.sections import Section
from repro.core.instrumentation import EmptyInstrumentation
from repro.core.layout import prepare_output
from repro.core.placement import padding_ranges
from repro.core.relocate import RelocEmitter
from repro.core.rewriter import RewriteReport
from repro.core.runtime_lib import pack_addr_map
from repro.core.trampolines import ScratchPool
from repro.isa import get_arch
from repro.isa.insn import Instruction, Mem
from repro.toolchain.asm import Label, Stream
from repro.isa.registers import R15


class InstructionPatcher:
    """Per-instruction patching of block-start instructions."""

    def __init__(self, instrumentation=None):
        self.instrumentation = instrumentation or EmptyInstrumentation()

    def rewrite(self, binary):
        """Returns (rewritten Binary, RewriteReport)."""
        spec = get_arch(binary.arch_name)
        cfg = build_cfg(binary)
        extra = self.instrumentation.prepare(binary, cfg)
        out, dead_ranges, extra_addrs = prepare_output(binary, extra)
        if hasattr(self.instrumentation, "section_addr") \
                and ".icounters" in extra_addrs:
            self.instrumentation.section_addr = extra_addrs[".icounters"]

        # Collect the instruction sites to patch (block starts).
        sites = []
        for fcfg in cfg.sorted_functions():
            if not fcfg.ok or fcfg.is_runtime_support:
                continue
            if not self.instrumentation.wants_function(fcfg):
                continue
            for block in fcfg.sorted_blocks():
                if self.instrumentation.wants_block(fcfg, block):
                    sites.append((fcfg, block))

        # Emit one mini-trampoline per site.
        stream = Stream(".epatch")
        toc_anchor = Label("toc")
        toc_anchor.addr = binary.metadata.get("toc_base", 0)
        emitter = RelocEmitter(stream, spec, binary.is_pic, toc_anchor,
                               extra_addrs)
        entry_labels = {}
        for fcfg, block in sites:
            insn = block.insns[0]
            label = Label(f"patch_{insn.addr:x}")
            entry_labels[insn.addr] = label
            stream.label(label)
            self.instrumentation.emit(emitter, fcfg, block)
            self._displace(stream, spec, insn, emitter)
            if insn.falls_through:
                back = Label(f"back_{insn.addr:x}")
                back.addr = insn.addr + insn.length
                stream.emit("jmp", 0, target=back)

        base = out.next_free_addr(64)
        stream.assign_addresses(spec, base)
        out.add_section(Section(".epatch", base,
                                stream.render(spec, base),
                                ("ALLOC", "EXEC"), 16))

        # Patch every site in place.
        pool = ScratchPool(padding_ranges(binary, cfg, spec)
                           + list(dead_ranges))
        trap_map = {}
        stats = {"direct": 0, "long": 0, "hop": 0, "save_restore": 0,
                 "trap": 0}
        site_records = []
        for fcfg, block in sites:
            insn = block.insns[0]
            target = entry_labels[insn.addr].resolved()
            kind = self._patch_site(out, spec, insn, target, pool,
                                    trap_map, stats)
            site_records.append([insn.addr, kind, fcfg.name])

        addr = out.next_free_addr(16)
        out.add_section(Section(".trap_map", addr,
                                pack_addr_map(trap_map), ("ALLOC",), 8))
        # Non-ALLOC forensics map mirroring the incremental rewriter's:
        # patched site -> its mini-trampoline entry.
        reloc_map = {a: lab.resolved() for a, lab in entry_labels.items()}
        addr = out.next_free_addr(16)
        out.add_section(Section(".reloc_map", addr,
                                pack_addr_map(reloc_map), (), 8))
        out.metadata["rewrite"] = {"mode": "instruction-patching",
                                   "trampolines": stats,
                                   "trampoline_sites": site_records}

        candidates = [f for f in cfg.sorted_functions()
                      if not f.is_runtime_support]
        report = RewriteReport(
            mode="instruction-patching",
            arch=spec.name,
            total_functions=len(candidates),
            relocated_functions=len([f for f in candidates if f.ok]),
            trampolines=stats,
            traps=stats["trap"],
            original_loaded=binary.loaded_size(),
            rewritten_loaded=out.loaded_size(),
        )
        return out, report

    # -- helpers ------------------------------------------------------------

    def _displace(self, stream, spec, insn, emitter):
        """Re-emit the displaced instruction inside the trampoline."""
        m = insn.mnemonic
        if insn.pcrel_index is not None:
            target = Label(f"orig_{insn.target:x}")
            target.addr = insn.target
            if m == "jmp.s":
                stream.emit("jmp", 0, target=target)
            elif m.startswith("ldpc") and spec.name != "x86":
                rd = insn.operands[0]
                emitter.emit_addr_label(rd, target)
                stream.emit("ld" + m[4:], rd, Mem(rd, 0))
            elif m == "leapc" and spec.name != "x86":
                emitter.emit_addr_label(insn.operands[0], target)
            else:
                ops = list(insn.operands)
                ops[insn.pcrel_index] = 0
                stream.emit(m, *ops, target=target)
        elif m == "adrp":
            value = (insn.addr & ~0xFFF) + (insn.operands[1] << 12)
            label = Label(f"orig_{value:x}")
            label.addr = value
            emitter.emit_addr_label(insn.operands[0], label)
        else:
            stream.emit(m, *insn.operands)

    def _patch_site(self, out, spec, insn, target, pool, trap_map, stats):
        """Patch one site; returns the trampoline kind installed."""
        site = insn.addr
        room = insn.length
        if spec.name == "x86":
            if room >= 5:
                self._write(out, spec, site,
                            Instruction("jmp", target - site), room)
                stats["long"] += 1
                return "long"
            if room >= 2:
                lo, hi = spec.pcrel_ranges["jmp.s"]
                slot = pool.take(5, lo=site + lo, hi=site + hi + 1)
                if slot is not None:
                    self._write(out, spec, site,
                                Instruction("jmp.s", slot - site), room)
                    out.write(slot, spec.encode(
                        Instruction("jmp", target - slot, addr=slot)
                    ))
                    stats["hop"] += 1
                    return "hop"
            out.write(site, spec.encode(Instruction("trap")))
            trap_map[site] = target
            stats["trap"] += 1
            return "trap"
        # Fixed-length: a branch always fits, but range may not reach —
        # and there is no CFG, hence no liveness, hence no scratch
        # register for a long sequence: trap.
        if spec.branch_reaches("jmp", site, target):
            self._write(out, spec, site,
                        Instruction("jmp", target - site), room)
            stats["direct"] += 1
            return "direct"
        out.write(site, spec.encode(Instruction("trap")))
        trap_map[site] = target
        stats["trap"] += 1
        return "trap"

    @staticmethod
    def _write(out, spec, site, insn, room):
        encoded = spec.encode(insn.at(site))
        nop = spec.encode(Instruction("nop"))
        pad = room - len(encoded)
        out.write(site, encoded + nop * (pad // len(nop)))
