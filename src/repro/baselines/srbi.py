"""The SRBI baseline (Dyninst-10.2-era rewriting; paper Sections 2, 8.1).

Differences from incremental CFG patching, each one a Table 1/Table 3
lever:

* **placement**: a trampoline at *every* basic block — sufficient for
  instrumentation integrity but wasteful; on ppc64 the resulting demand
  for long trampolines exhausts scratch space and forces traps;
* **call emulation** instead of RA translation: returns re-enter original
  code at every call fall-through (bounce per return);
* **weaker analysis**: no stack-spill tracking in jump-table slicing and
  no layout-based indirect-tail-call heuristic — the coverage losses of
  Table 3's SRBI rows;
* **modeled defects** (documented stand-ins for the bugs the paper
  found in Dyninst-10.2):

  - C++-exception binaries are rejected: call emulation for exceptions
    was unimplemented on ppc64le/aarch64 and broken on x86-64
    ("does not correctly handle indirect calls through stack memory
    locations");
  - the runtime library's trap handler mishandles signal delivery under
    sustained trap pressure (the 602.sgcc failure): after
    :data:`TRAP_DELIVERY_BUDGET` trap signals the handler drops one,
    crashing the process.
"""

from repro.analysis.construction import ConstructionOptions
from repro.core.modes import RewriteMode
from repro.core.placement import PlacementResult, Superblock
from repro.core.rewriter import IncrementalRewriter
from repro.core.runtime_lib import RuntimeLibrary
from repro.util.errors import RewriteError

#: Trap signals the modeled Dyninst-10.2 runtime survives before its
#: signal-delivery bug fires.
TRAP_DELIVERY_BUDGET = 512


class SrbiRuntimeLibrary(RuntimeLibrary):
    """Runtime library with the modeled signal-delivery defect."""

    def __init__(self, *args, trap_budget=TRAP_DELIVERY_BUDGET, **kwargs):
        super().__init__(*args, **kwargs)
        self.trap_budget = trap_budget
        self.traps_served = 0

    @classmethod
    def from_runtime(cls, runtime, trap_budget=TRAP_DELIVERY_BUDGET):
        lib = cls(
            ra_map=runtime.ra_map,
            trap_map=runtime.trap_map,
            dyn_map=runtime.dyn_map,
            wrap_unwind=runtime.wrap_unwind,
            go_hooks=runtime.go_hooks,
            trap_budget=trap_budget,
        )
        return lib

    def trap_target(self, loaded_pc):
        self.traps_served += 1
        if self.traps_served > self.trap_budget:
            # Lost signal: the kernel sees an unhandled trap and the
            # process dies (the paper's pre-fix 602.sgcc behaviour).
            return None
        return super().trap_target(loaded_pc)


class SrbiRewriter(IncrementalRewriter):
    """Structured binary editing with per-block trampolines."""

    # No scratch-block analysis: unused superblock bytes are not reused
    # (that insight is the paper's contribution), and the legacy trap
    # mapping costs ~96 bytes per trap trampoline.
    pool_leftovers = False
    trap_map_entry_pad = 80

    def __init__(self, instrumentation=None, scorch_original=False,
                 trap_budget=TRAP_DELIVERY_BUDGET, cfg_hook=None):
        super().__init__(
            mode=RewriteMode.DIR,
            instrumentation=instrumentation,
            construction_options=ConstructionOptions(
                track_spills=False,
                tail_call_heuristic=False,
            ),
            scorch_original=scorch_original,
            call_emulation=True,
            cfg_hook=cfg_hook,
        )
        self.trap_budget = trap_budget

    def _pre_checks(self, binary, cfg):
        if binary.landing_pads:
            raise RewriteError(
                "SRBI call emulation does not correctly support C++ "
                "exceptions (unimplemented on ppc64le/aarch64; broken "
                "indirect-call handling on x86-64)"
            )

    def _compute_placement(self, cfg, cfl):
        """A trampoline at every basic block of every relocated function.

        No scratch blocks exist under this strategy (every block gets a
        trampoline), so the pool is only padding + dead sections."""
        result = PlacementResult()
        for fcfg in cfg.sorted_functions():
            if not fcfg.ok or fcfg.is_runtime_support:
                continue
            if fcfg.entry not in cfl.relocated:
                continue
            cfl_blocks = set(fcfg.blocks)
            result.cfl_by_function[fcfg.name] = cfl_blocks
            for block in fcfg.sorted_blocks():
                if block.size > 0:
                    result.superblocks.append(
                        Superblock(fcfg.name, block.start, block.end)
                    )
        return result

    def runtime_library(self, rewritten):
        base = RuntimeLibrary.from_binary(rewritten)
        return SrbiRuntimeLibrary.from_runtime(
            base, trap_budget=self.trap_budget
        )
